//===- tests/truechange_extra_test.cpp - Inversion, wire format, fuzzing ---===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the truechange extensions built on the paper's core:
///  - script inversion (undo): applying a script and its inverse restores
///    the original tree, and the inverse of a well-typed script is
///    well-typed with swapped contexts;
///  - the textual wire format: parse is the exact inverse of serialize;
///  - adversarial fuzzing of Theorem 3.6: randomly corrupted scripts are
///    either rejected (by the type checker or the compliance checks) or
///    still yield closed, well-formed trees.
///
//===----------------------------------------------------------------------===//

#include "truechange/InitScript.h"
#include "truechange/Inverse.h"
#include "truechange/MTree.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"

#include "corpus/Corpus.h"
#include "python/Python.h"
#include "support/Rng.h"
#include "truediff/TrueDiff.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

//===----------------------------------------------------------------------===//
// Inversion
//===----------------------------------------------------------------------===//

class InverseTest : public ::testing::Test {
protected:
  InverseTest() : Sig(makeExpSignature()), Ctx(Sig), Checker(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
  LinearTypeChecker Checker;
};

TEST_F(InverseTest, InvertsEachKind) {
  NodeRef N{Sig.lookup("Num"), 3};
  NodeRef P{Sig.lookup("Add"), 1};
  LinkId E1 = Sig.lookup("e1");

  Edit D = Edit::detach(N, E1, P);
  EXPECT_EQ(invertEdit(D).Kind, EditKind::Attach);
  EXPECT_EQ(invertEdit(invertEdit(D)).Kind, EditKind::Detach);

  Edit L = Edit::load(N, {}, {LitRef{Sig.lookup("n"), Literal(int64_t(7))}});
  EXPECT_EQ(invertEdit(L).Kind, EditKind::Unload);

  Edit U = Edit::update(N, {LitRef{Sig.lookup("n"), Literal(int64_t(1))}},
                        {LitRef{Sig.lookup("n"), Literal(int64_t(2))}});
  Edit UI = invertEdit(U);
  EXPECT_EQ(UI.Kind, EditKind::Update);
  EXPECT_EQ(UI.Lits[0].Value, Literal(int64_t(1)));
  EXPECT_EQ(UI.OldLits[0].Value, Literal(int64_t(2)));
}

TEST_F(InverseTest, UndoRestoresOriginalTree) {
  Tree *Source = add(Ctx, sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")),
                     mul(Ctx, leaf(Ctx, "c"), leaf(Ctx, "d")));
  Tree *Target = add(Ctx, leaf(Ctx, "d"),
                     mul(Ctx, leaf(Ctx, "c"),
                         sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b"))));
  Tree *SourceCopy = Ctx.deepCopy(Source);

  MTree M = MTree::fromTree(Sig, Source);
  TrueDiff Differ(Ctx);
  DiffResult R = Differ.compareTo(Source, Target);

  ASSERT_TRUE(M.patchChecked(R.Script).Ok);
  EXPECT_TRUE(M.equalsTree(Target));

  EditScript Undo = invertScript(R.Script);
  ASSERT_TRUE(Checker.checkWellTyped(Undo).Ok)
      << Undo.toString(Sig);
  ASSERT_TRUE(M.patchChecked(Undo).Ok);
  EXPECT_TRUE(M.equalsTree(SourceCopy)) << M.toString();
}

TEST_F(InverseTest, InversionIsAnInvolution) {
  Tree *Source = add(Ctx, num(Ctx, 1), call(Ctx, "f", num(Ctx, 2)));
  Tree *Target = mul(Ctx, call(Ctx, "g", num(Ctx, 2)), num(Ctx, 3));
  TrueDiff Differ(Ctx);
  DiffResult R = Differ.compareTo(Source, Target);
  EXPECT_EQ(invertScript(invertScript(R.Script)).toString(Sig),
            R.Script.toString(Sig));
}

class InversePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InversePropertyTest, UndoOnPythonCorpus) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 733 + 11);
  LinearTypeChecker Checker(Sig);

  Tree *Base = corpus::generateModule(Ctx, R);
  Tree *Mutated = corpus::mutateModule(Ctx, R, Base);
  Tree *BaseCopy = Ctx.deepCopy(Base);

  MTree M = MTree::fromTree(Sig, Base);
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Base, Mutated);

  ASSERT_TRUE(M.patchChecked(Result.Script).Ok);
  EditScript Undo = invertScript(Result.Script);
  ASSERT_TRUE(Checker.checkWellTyped(Undo).Ok);
  ASSERT_TRUE(M.patchChecked(Undo).Ok);
  EXPECT_TRUE(M.equalsTree(BaseCopy));
  EXPECT_TRUE(M.isClosedWellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InversePropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

class SerializeTest : public ::testing::Test {
protected:
  SerializeTest() : Sig(makeExpSignature()), Ctx(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_F(SerializeTest, RoundTripAllEditKinds) {
  TagId NumTag = Sig.lookup("Num");
  TagId AddTag = Sig.lookup("Add");
  TagId CallTag = Sig.lookup("Call");
  LinkId E1 = Sig.lookup("e1"), E2 = Sig.lookup("e2");
  LinkId N = Sig.lookup("n"), F = Sig.lookup("f"), A = Sig.lookup("a");

  EditScript S;
  S.append(Edit::detach(NodeRef{NumTag, 5}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::unload(NodeRef{NumTag, 5}, {},
                        {LitRef{N, Literal(int64_t(-7))}}));
  S.append(Edit::load(NodeRef{CallTag, 9}, {KidRef{A, 6}},
                      {LitRef{F, Literal("fn \"quoted\"\n")}}));
  S.append(Edit::attach(NodeRef{CallTag, 9}, E2, NodeRef{AddTag, 1}));
  S.append(Edit::update(NodeRef{NumTag, 6},
                        {LitRef{N, Literal(int64_t(2))}},
                        {LitRef{N, Literal(int64_t(3))}}));

  std::string Text = serializeEditScript(Sig, S);
  ParseScriptResult P = parseEditScript(Sig, Text);
  ASSERT_TRUE(P.Ok) << P.Error << "\n" << Text;
  EXPECT_EQ(serializeEditScript(Sig, P.Script), Text);
  EXPECT_EQ(P.Script.size(), S.size());
}

TEST_F(SerializeTest, RoundTripFloatAndBoolLiterals) {
  SignatureTable PySig = python::makePythonSignature();
  EditScript S;
  S.append(Edit::load(NodeRef{PySig.lookup("FloatLit"), 3}, {},
                      {LitRef{PySig.lookup("value"), Literal(2.5)}}));
  S.append(Edit::load(NodeRef{PySig.lookup("BoolLit"), 4}, {},
                      {LitRef{PySig.lookup("value"), Literal(true)}}));
  std::string Text = serializeEditScript(PySig, S);
  ParseScriptResult P = parseEditScript(PySig, Text);
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Script[0].Lits[0].Value, Literal(2.5));
  EXPECT_EQ(P.Script[1].Lits[0].Value, Literal(true));
}

TEST_F(SerializeTest, ParsedScriptAppliesIdentically) {
  Tree *Source = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Target = mul(Ctx, num(Ctx, 2), num(Ctx, 1));
  MTree M1 = MTree::fromTree(Sig, Source);
  MTree M2 = MTree::fromTree(Sig, Source);

  TrueDiff Differ(Ctx);
  DiffResult R = Differ.compareTo(Source, Target);
  ParseScriptResult P =
      parseEditScript(Sig, serializeEditScript(Sig, R.Script));
  ASSERT_TRUE(P.Ok) << P.Error;

  ASSERT_TRUE(M1.patchChecked(R.Script).Ok);
  ASSERT_TRUE(M2.patchChecked(P.Script).Ok);
  EXPECT_EQ(M1.toString(), M2.toString());
}

TEST_F(SerializeTest, ReportsErrors) {
  EXPECT_FALSE(parseEditScript(Sig, "explode(Num_1)").Ok);
  EXPECT_FALSE(parseEditScript(Sig, "detach(Bogus_1, \"e1\", Add_2)").Ok);
  EXPECT_FALSE(parseEditScript(Sig, "detach(Num_1, \"zz\", Add_2)").Ok);
  EXPECT_FALSE(parseEditScript(Sig, "detach(Num_1, \"e1\"").Ok);
  EXPECT_FALSE(parseEditScript(Sig, "load(Num_1, [], [\"n\"->]）").Ok);
  EXPECT_TRUE(parseEditScript(Sig, "").Ok);
}

class SerializePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializePropertyTest, RoundTripOnPythonCorpus) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 881 + 23);

  Tree *Base = corpus::generateModule(Ctx, R);
  Tree *Mutated = corpus::mutateModule(Ctx, R, Base);
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Base, Mutated);

  std::string Text = serializeEditScript(Sig, Result.Script);
  ParseScriptResult P = parseEditScript(Sig, Text);
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(serializeEditScript(Sig, P.Script), Text);
}

TEST_P(SerializePropertyTest, ParsedScriptAppliesToTarget) {
  // The full wire round trip: serialize -> parse -> apply to the base
  // tree yields the target tree, i.e. the textual form preserves not
  // just syntax but the script's semantics.
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 881 + 23);

  Tree *Base = corpus::generateModule(Ctx, R);
  Tree *Mutated = corpus::mutateModule(Ctx, R, Base);

  MTree M = MTree::fromTree(Sig, Base);
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Base, Mutated);

  ParseScriptResult P =
      parseEditScript(Sig, serializeEditScript(Sig, Result.Script));
  ASSERT_TRUE(P.Ok) << P.Error;
  ASSERT_TRUE(M.patchChecked(P.Script).Ok);
  EXPECT_TRUE(M.equalsTree(Mutated));
  EXPECT_TRUE(M.isClosedWellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Initializing scripts (Definition 3.2) and MTree round trips
//===----------------------------------------------------------------------===//

class InitScriptTest : public ::testing::Test {
protected:
  InitScriptTest() : Sig(makeExpSignature()), Ctx(Sig), Checker(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
  LinearTypeChecker Checker;
};

TEST_F(InitScriptTest, BuildsTreeFromEmpty) {
  Tree *T = add(Ctx, call(Ctx, "f", num(Ctx, 1)), var(Ctx, "x"));
  EditScript Init = buildInitializingScript(Sig, T);
  EXPECT_EQ(Init.size(), T->size() + 1); // one load per node + attach

  auto TC = Checker.checkInitializing(Init);
  EXPECT_TRUE(TC.Ok) << TC.Error;
  // An initializing script is NOT well-typed against a closed tree.
  EXPECT_FALSE(Checker.checkWellTyped(Init).Ok);

  MTree Empty(Sig);
  ASSERT_TRUE(Empty.patchChecked(Init).Ok);
  EXPECT_TRUE(Empty.equalsTree(T));
  EXPECT_TRUE(Empty.isClosedWellFormed());
}

TEST_F(InitScriptTest, MatchesPaperDelta1Shape) {
  // Section 3.1's Delta_1 builds Add(Var("a"), Var("b")) with three loads
  // and one attach, loads bottom-up.
  Tree *T = add(Ctx, var(Ctx, "a"), var(Ctx, "b"));
  EditScript Init = buildInitializingScript(Sig, T);
  ASSERT_EQ(Init.size(), 4u);
  EXPECT_EQ(Init[0].Kind, EditKind::Load);
  EXPECT_EQ(Init[1].Kind, EditKind::Load);
  EXPECT_EQ(Init[2].Kind, EditKind::Load);
  EXPECT_EQ(Init[3].Kind, EditKind::Attach);
  EXPECT_EQ(Init[2].Node.Uri, T->uri()); // root loaded last
  EXPECT_EQ(Init[3].Node.Uri, T->uri());
}

TEST_F(InitScriptTest, MTreeToTreeRoundTrip) {
  Tree *T = mul(Ctx, add(Ctx, num(Ctx, 1), var(Ctx, "v")),
                call(Ctx, "g", num(Ctx, 2)));
  MTree M = MTree::fromTree(Sig, T);
  Tree *Back = M.toTree(Ctx);
  ASSERT_NE(Back, nullptr);
  EXPECT_TRUE(treeEqualsModuloUris(T, Back));
}

TEST_F(InitScriptTest, ToTreeRejectsOpenTrees) {
  Tree *T = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  MTree M = MTree::fromTree(Sig, T);
  // Detach a kid: the tree now has a hole, so conversion must refuse.
  EditScript S;
  S.append(Edit::detach(NodeRef{T->kid(0)->tag(), T->kid(0)->uri()},
                        Sig.lookup("e1"), NodeRef{T->tag(), T->uri()}));
  ASSERT_TRUE(M.patchChecked(S).Ok);
  EXPECT_EQ(M.toTree(Ctx), nullptr);
  EXPECT_FALSE(M.isClosedWellFormed());
}

TEST_F(InitScriptTest, TransmitTreeThenPatchPipeline) {
  // Full transmission scenario: send the initial tree as a script, then
  // send a diff; the receiver reconstructs the target without ever
  // seeing a tree.
  Tree *V1 = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *V2 = add(Ctx, num(Ctx, 1), mul(Ctx, num(Ctx, 2), num(Ctx, 3)));
  EditScript Init = buildInitializingScript(Sig, V1);

  TrueDiff Differ(Ctx);
  Tree *V1Copy = Ctx.deepCopy(V1);
  DiffResult R = Differ.compareTo(V1, V2);
  (void)V1Copy;

  // Receiver side: deserialize both scripts, replay from empty.
  std::string Wire1 = serializeEditScript(Sig, Init);
  std::string Wire2 = serializeEditScript(Sig, R.Script);
  MTree Receiver(Sig);
  auto P1 = parseEditScript(Sig, Wire1);
  auto P2 = parseEditScript(Sig, Wire2);
  ASSERT_TRUE(P1.Ok && P2.Ok);
  ASSERT_TRUE(Receiver.patchChecked(P1.Script).Ok);
  ASSERT_TRUE(Receiver.patchChecked(P2.Script).Ok);
  EXPECT_TRUE(Receiver.equalsTree(V2));
}

class InitScriptPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InitScriptPropertyTest, InitializesRandomPythonModules) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 557 + 41);
  LinearTypeChecker Checker(Sig);

  Tree *Module = corpus::generateModule(Ctx, R);
  EditScript Init = buildInitializingScript(Sig, Module);
  ASSERT_TRUE(Checker.checkInitializing(Init).Ok);

  MTree Empty(Sig);
  ASSERT_TRUE(Empty.patchChecked(Init).Ok);
  EXPECT_TRUE(Empty.equalsTree(Module));

  Tree *Back = Empty.toTree(Ctx);
  ASSERT_NE(Back, nullptr);
  EXPECT_TRUE(treeEqualsModuloUris(Module, Back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InitScriptPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

//===----------------------------------------------------------------------===//
// Theorem 3.6 under adversarial corruption
//===----------------------------------------------------------------------===//

/// Randomly corrupts one aspect of a script.
EditScript corrupt(Rng &R, const EditScript &Script) {
  std::vector<Edit> Edits(Script.edits());
  if (Edits.empty())
    return EditScript(std::move(Edits));
  switch (R.below(6)) {
  case 0: { // swap two edits
    size_t I = R.below(Edits.size()), J = R.below(Edits.size());
    std::swap(Edits[I], Edits[J]);
    break;
  }
  case 1: // drop an edit
    Edits.erase(Edits.begin() + static_cast<long>(R.below(Edits.size())));
    break;
  case 2: { // duplicate an edit
    size_t I = R.below(Edits.size());
    Edits.insert(Edits.begin() + static_cast<long>(I), Edits[I]);
    break;
  }
  case 3: { // perturb a node URI
    Edit &E = Edits[R.below(Edits.size())];
    E.Node.Uri += R.range(1, 5);
    break;
  }
  case 4: { // perturb a parent URI (detach/attach only)
    Edit &E = Edits[R.below(Edits.size())];
    E.Parent.Uri += R.range(1, 5);
    break;
  }
  default: { // reverse the whole script without inverting the edits
    std::reverse(Edits.begin(), Edits.end());
    break;
  }
  }
  return EditScript(std::move(Edits));
}

class Theorem36FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem36FuzzTest, AcceptedScriptsYieldWellFormedTrees) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 677 + 101);
  LinearTypeChecker Checker(Sig);

  Tree *Base = corpus::generateModule(Ctx, R);
  Tree *Mutated = corpus::mutateModule(Ctx, R, Base);
  Tree *BaseCopy = Ctx.deepCopy(Base);
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(Base, Mutated);

  size_t Accepted = 0, Rejected = 0;
  for (int Round = 0; Round != 40; ++Round) {
    EditScript Bad = corrupt(R, Result.Script);
    bool WellTyped = Checker.checkWellTyped(Bad).Ok;
    MTree M = MTree::fromTree(Sig, BaseCopy);
    bool Applied = WellTyped && M.patchChecked(Bad).Ok;
    if (Applied) {
      // Theorem 3.6: a script that passes the type system and the
      // compliance checks must produce a closed, well-typed tree.
      EXPECT_TRUE(M.isClosedWellFormed())
          << "corrupted script accepted but tree malformed:\n"
          << Bad.toString(Sig);
      ++Accepted;
    } else {
      ++Rejected;
    }
  }
  // Most corruptions must be caught; a few (e.g. swapping commuting
  // edits) legitimately stay valid.
  EXPECT_GT(Rejected, 0u);
  (void)Accepted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem36FuzzTest,
                         ::testing::Range<uint64_t>(0, 25));

} // namespace

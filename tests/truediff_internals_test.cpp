//===- tests/truediff_internals_test.cpp - Shares, registry, buffer --------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// White-box tests for truediff's Step 2/3 machinery: subtree shares
/// (availability, preferred selection, lazy deregistration), the share
/// registry (interning by structure hash), and the edit buffer's
/// negative-before-positive ordering.
///
//===----------------------------------------------------------------------===//

#include "truediff/EditBuffer.h"
#include "truediff/SubtreeShare.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

class InternalsTest : public ::testing::Test {
protected:
  InternalsTest() : Sig(makeExpSignature()), Ctx(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
};

//===----------------------------------------------------------------------===//
// SubtreeShare
//===----------------------------------------------------------------------===//

TEST_F(InternalsTest, TakeAnyIsRegistrationOrdered) {
  SubtreeShare Share;
  Tree *A = num(Ctx, 1);
  Tree *B = num(Ctx, 2);
  Share.registerAvailableTree(A);
  Share.registerAvailableTree(B);
  EXPECT_EQ(Share.takeAny(), A);
  Share.deregisterAvailableTree(A);
  EXPECT_EQ(Share.takeAny(), B);
  Share.deregisterAvailableTree(B);
  EXPECT_EQ(Share.takeAny(), nullptr);
}

TEST_F(InternalsTest, TakeAnySkipsDeregisteredLazily) {
  SubtreeShare Share;
  Tree *A = num(Ctx, 1);
  Tree *B = num(Ctx, 2);
  Share.registerAvailableTree(A);
  Share.registerAvailableTree(B);
  Share.deregisterAvailableTree(A);
  EXPECT_FALSE(Share.isAvailable(A));
  EXPECT_EQ(Share.takeAny(), B);
}

TEST_F(InternalsTest, TakePreferredMatchesLiteralHash) {
  SubtreeShare Share;
  Tree *N5 = num(Ctx, 5);
  Tree *N7 = num(Ctx, 7);
  Share.registerAvailableTree(N5);
  Share.registerAvailableTree(N7);
  Tree *Probe7 = num(Ctx, 7);
  EXPECT_EQ(Share.takePreferred(Probe7->literalHash()), N7);
  Tree *Probe9 = num(Ctx, 9);
  EXPECT_EQ(Share.takePreferred(Probe9->literalHash()), nullptr);
}

TEST_F(InternalsTest, TakePreferredSkipsConsumedCandidates) {
  SubtreeShare Share;
  Tree *A = num(Ctx, 7);
  Tree *B = num(Ctx, 7);
  Share.registerAvailableTree(A);
  Share.registerAvailableTree(B);
  // Build the index first, then consume A through another path.
  EXPECT_EQ(Share.takePreferred(A->literalHash()), A);
  Share.deregisterAvailableTree(A);
  EXPECT_EQ(Share.takePreferred(A->literalHash()), B);
}

//===----------------------------------------------------------------------===//
// SubtreeRegistry
//===----------------------------------------------------------------------===//

TEST_F(InternalsTest, RegistryInternsByStructureHash) {
  SubtreeRegistry Registry;
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *B = add(Ctx, num(Ctx, 9), num(Ctx, 8)); // structurally equivalent
  Tree *C = sub(Ctx, num(Ctx, 1), num(Ctx, 2)); // different shape
  SubtreeShare *SA = Registry.assignShare(A);
  SubtreeShare *SB = Registry.assignShare(B);
  SubtreeShare *SC = Registry.assignShare(C);
  EXPECT_EQ(SA, SB);
  EXPECT_NE(SA, SC);
  EXPECT_EQ(Registry.numShares(), 2u);
  EXPECT_EQ(A->share(), SA);
}

TEST_F(InternalsTest, AssignShareIsIdempotent) {
  SubtreeRegistry Registry;
  Tree *A = num(Ctx, 1);
  SubtreeShare *First = Registry.assignShare(A);
  EXPECT_EQ(Registry.assignShare(A), First);
}

TEST_F(InternalsTest, AssignShareAndRegisterMakesAvailable) {
  SubtreeRegistry Registry;
  Tree *A = num(Ctx, 3);
  SubtreeShare *Share = Registry.assignShareAndRegisterTree(A);
  EXPECT_TRUE(Share->isAvailable(A));
  EXPECT_EQ(Share->takeAny(), A);
}

//===----------------------------------------------------------------------===//
// Tree diff-state helpers
//===----------------------------------------------------------------------===//

TEST_F(InternalsTest, AssignTreeIsSymmetric) {
  Tree *A = num(Ctx, 1);
  Tree *B = num(Ctx, 1);
  A->assignTree(B);
  EXPECT_EQ(A->assigned(), B);
  EXPECT_EQ(B->assigned(), A);
  A->unassignTree();
  EXPECT_EQ(A->assigned(), nullptr);
  EXPECT_EQ(B->assigned(), nullptr);
}

TEST_F(InternalsTest, ClearDiffStateResetsEverything) {
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  SubtreeRegistry Registry;
  Registry.assignShare(A);
  A->kid(0)->setCovered(true);
  A->kid(1)->setMark(42);
  A->clearDiffState();
  EXPECT_EQ(A->share(), nullptr);
  EXPECT_FALSE(A->kid(0)->covered());
  EXPECT_EQ(A->kid(1)->mark(), 0u);
}

//===----------------------------------------------------------------------===//
// EditBuffer
//===----------------------------------------------------------------------===//

TEST_F(InternalsTest, NegativesPrecedePositives) {
  TagId NumTag = Sig.lookup("Num");
  TagId AddTag = Sig.lookup("Add");
  LinkId E1 = Sig.lookup("e1");
  LinkId N = Sig.lookup("n");

  EditBuffer Buffer;
  Buffer.emit(Edit::attach(NodeRef{NumTag, 9}, E1, NodeRef{AddTag, 1}));
  Buffer.emit(Edit::detach(NodeRef{NumTag, 2}, E1, NodeRef{AddTag, 1}));
  Buffer.emit(Edit::load(NodeRef{NumTag, 9}, {},
                         {LitRef{N, Literal(int64_t(4))}}));
  Buffer.emit(Edit::unload(NodeRef{NumTag, 2}, {},
                           {LitRef{N, Literal(int64_t(3))}}));
  EXPECT_EQ(Buffer.size(), 4u);

  EditScript Script = std::move(Buffer).toEditScript();
  ASSERT_EQ(Script.size(), 4u);
  // Negative edits in emission order, then positives in emission order.
  EXPECT_EQ(Script[0].Kind, EditKind::Detach);
  EXPECT_EQ(Script[1].Kind, EditKind::Unload);
  EXPECT_EQ(Script[2].Kind, EditKind::Attach);
  EXPECT_EQ(Script[3].Kind, EditKind::Load);
}

TEST_F(InternalsTest, UpdatesCountAsPositive) {
  TagId NumTag = Sig.lookup("Num");
  LinkId N = Sig.lookup("n");
  Edit Update = Edit::update(NodeRef{NumTag, 1},
                             {LitRef{N, Literal(int64_t(1))}},
                             {LitRef{N, Literal(int64_t(2))}});
  EXPECT_FALSE(Update.isNegative());

  EditBuffer Buffer;
  Buffer.emit(Update);
  Buffer.emit(Edit::detach(NodeRef{NumTag, 2}, Sig.lookup("e1"),
                           NodeRef{Sig.lookup("Add"), 3}));
  EditScript Script = std::move(Buffer).toEditScript();
  EXPECT_EQ(Script[0].Kind, EditKind::Detach);
  EXPECT_EQ(Script[1].Kind, EditKind::Update);
}

} // namespace

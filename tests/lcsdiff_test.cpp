//===- tests/lcsdiff_test.cpp - Unit tests for the LCS baseline ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lcsdiff/LcsDiff.h"

#include "support/Rng.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::lcsdiff;
using namespace truediff::testlang;

namespace {

class LcsDiffTest : public ::testing::Test {
protected:
  LcsDiffTest() : Sig(makeExpSignature()), Ctx(Sig) {}

  LcsScript checkedDiff(const Tree *Src, const Tree *Dst,
                        LcsOptions Opts = LcsOptions()) {
    LcsScript Script = lcsDiff(Src, Dst, Opts);
    Tree *Applied = applyLcs(Ctx, Src, Script);
    EXPECT_NE(Applied, nullptr);
    if (Applied != nullptr) {
      EXPECT_TRUE(treeEqualsModuloUris(Applied, Dst))
          << Script.toString(Sig);
    }
    return Script;
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_F(LcsDiffTest, PreOrderTokens) {
  Tree *T = add(Ctx, num(Ctx, 1), call(Ctx, "f", var(Ctx, "x")));
  std::vector<Token> Toks = preOrderTokens(T);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Tag, Sig.lookup("Add"));
  EXPECT_EQ(Toks[1].Tag, Sig.lookup("Num"));
  EXPECT_EQ(Toks[2].Tag, Sig.lookup("Call"));
  EXPECT_EQ(Toks[3].Tag, Sig.lookup("Var"));
}

TEST_F(LcsDiffTest, IdenticalTreesAreAllCpy) {
  Tree *Src = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Dst = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  LcsScript S = checkedDiff(Src, Dst);
  EXPECT_EQ(S.size(), 3u); // proportional to the tree, even unchanged
  EXPECT_EQ(S.numChanges(), 0u);
}

TEST_F(LcsDiffTest, LiteralChangeIsDelIns) {
  Tree *Src = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Dst = add(Ctx, num(Ctx, 1), num(Ctx, 9));
  LcsScript S = checkedDiff(Src, Dst);
  EXPECT_EQ(S.numChanges(), 2u); // Del(Num 2), Ins(Num 9)
}

TEST_F(LcsDiffTest, MovedSubtreeIsDeletedAndReinserted) {
  // The paper's Section 1 point: no moves, so the swap costs
  // delete+reinsert of whole subtrees.
  Tree *Src = add(Ctx, sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")),
                  mul(Ctx, leaf(Ctx, "c"), leaf(Ctx, "d")));
  Tree *Dst = add(Ctx, leaf(Ctx, "d"),
                  mul(Ctx, leaf(Ctx, "c"),
                      sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b"))));
  LcsScript S = checkedDiff(Src, Dst);
  // truediff needs 4 edits; the LCS script needs strictly more changes.
  EXPECT_GT(S.numChanges(), 4u) << S.toString(Sig);
}

TEST_F(LcsDiffTest, FallbackStillCorrect) {
  Tree *Src = add(Ctx, num(Ctx, 1), mul(Ctx, num(Ctx, 2), num(Ctx, 3)));
  Tree *Dst = sub(Ctx, num(Ctx, 4), call(Ctx, "f", num(Ctx, 5)));
  LcsOptions Opts;
  Opts.MaxDpProduct = 0; // force wholesale replacement
  LcsScript S = checkedDiff(Src, Dst, Opts);
  EXPECT_EQ(S.numChanges(), Src->size() + Dst->size());
}

TEST_F(LcsDiffTest, ApplyRejectsWrongSource) {
  Tree *Src = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Dst = add(Ctx, num(Ctx, 1), num(Ctx, 9));
  LcsScript S = lcsDiff(Src, Dst);
  // Cpy is positional, but Del checks the deleted token: a source whose
  // deleted position differs must be rejected.
  Tree *Other = add(Ctx, num(Ctx, 1), num(Ctx, 5));
  EXPECT_EQ(applyLcs(Ctx, Other, S), nullptr);
  // A script longer than the source must be rejected too.
  Tree *Tiny = num(Ctx, 1);
  EXPECT_EQ(applyLcs(Ctx, Tiny, S), nullptr);
}

class LcsRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcsRandomTest, ApplyDiffRoundTrips) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 15013 + 29);

  std::function<Tree *(int)> Gen = [&](int Depth) -> Tree * {
    if (Depth <= 1 || R.chance(30))
      return num(Ctx, R.range(0, 4));
    switch (R.below(3)) {
    case 0:
      return add(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    case 1:
      return mul(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    default:
      return call(Ctx, "f", Gen(Depth - 1));
    }
  };

  Tree *Src = Gen(6);
  Tree *Dst = Gen(6);
  LcsScript S = lcsDiff(Src, Dst);
  Tree *Applied = applyLcs(Ctx, Src, S);
  ASSERT_NE(Applied, nullptr);
  EXPECT_TRUE(treeEqualsModuloUris(Applied, Dst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcsRandomTest,
                         ::testing::Range<uint64_t>(0, 50));

} // namespace

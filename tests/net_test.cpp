//===- tests/net_test.cpp - TCP front end tests ----------------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the net layer: the epoll event loop serving the textual
/// wire protocol and the length-prefixed binary protocol on one port.
/// Covers round trips on both protocols, 64+ concurrent connections,
/// pipelined requests answered in arrival order, split writes, the
/// robustness contract (oversized frames kill the connection with a
/// typed FrameTooLarge, malformed payloads answer MalformedFrame and the
/// connection lives on), a seeded fuzz hammer that must never crash the
/// loop, and per-connection idle timeouts. The CI runs this binary under
/// ThreadSanitizer, so the loop-thread/worker-thread handoff is also
/// race-checked here.
///
//===----------------------------------------------------------------------===//

#include "client/Client.h"
#include "net/EventLoop.h"
#include "net/Frame.h"
#include "net/NetServer.h"
#include "net/ServiceHandler.h"
#include "persist/BinaryCodec.h"
#include "persist/Varint.h"
#include "service/DiffService.h"
#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"
#include "tree/SExpr.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

//===----------------------------------------------------------------------===//
// Harness: a full service stack behind a NetServer on an ephemeral port.
//===----------------------------------------------------------------------===//

struct ServerHarness {
  SignatureTable Sig;
  service::DocumentStore Store;
  std::unique_ptr<service::DiffService> Svc;
  std::unique_ptr<net::ServiceHandler> Handler;
  net::EventLoop Loop;
  std::unique_ptr<net::NetServer> Srv;
  bool Started = false;

  explicit ServerHarness(net::NetServer::Config C = net::NetServer::Config())
      : Sig(makeExpSignature()), Store(Sig) {
    service::ServiceConfig SC;
    SC.Workers = 2;
    Svc = std::make_unique<service::DiffService>(Store, SC);
    Handler = std::make_unique<net::ServiceHandler>(*Svc);
    Srv = std::make_unique<net::NetServer>(Loop, Sig, *Handler, C);
    std::string Err;
    Started = Srv->start(&Err);
    EXPECT_TRUE(Started) << Err;
    Loop.start();
  }

  ~ServerHarness() {
    Loop.stop();
    Svc->shutdown();
  }

  uint16_t port() const { return Srv->port(); }
};

//===----------------------------------------------------------------------===//
// Blocking test client with poll-based timeouts.
//===----------------------------------------------------------------------===//

class TcpClient {
public:
  TcpClient() = default;
  ~TcpClient() { closeFd(); }
  TcpClient(const TcpClient &) = delete;
  TcpClient &operator=(const TcpClient &) = delete;

  bool connect(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in A{};
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
      closeFd();
      return false;
    }
    return true;
  }

  void closeFd() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool sendAll(std::string_view Bytes) {
    while (!Bytes.empty()) {
      ssize_t N = ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Bytes.remove_prefix(static_cast<size_t>(N));
    }
    return true;
  }

  /// One recv() guarded by poll(); false on timeout, error, or EOF (EOF
  /// additionally sets SawEof).
  bool fill(int TimeoutMs) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, TimeoutMs);
    if (R <= 0)
      return false;
    char Tmp[4096];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0)
      return false;
    if (N == 0) {
      SawEof = true;
      return false;
    }
    Buf.append(Tmp, static_cast<size_t>(N));
    return true;
  }

  bool readLine(std::string &Line, int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || !fill(Left))
        return false;
    }
  }

  /// Reads one framed textual response: every line up to (excluding) the
  /// terminating "." line.
  bool readTextResponse(std::vector<std::string> &Lines,
                        int TimeoutMs = 10000) {
    Lines.clear();
    std::string Line;
    for (;;) {
      if (!readLine(Line, TimeoutMs))
        return false;
      if (Line == ".")
        return true;
      Lines.push_back(Line);
    }
  }

  /// Reads one binary frame (any magic).
  bool readFrame(net::FrameHeader &H, std::string &Payload,
                 int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      net::FramePeek P = net::peekFrame(Buf, net::MaxBinaryFrameBytes, H);
      if (P == net::FramePeek::Ok) {
        Payload = Buf.substr(net::FrameHeaderBytes, H.Len);
        Buf.erase(0, net::FrameHeaderBytes + H.Len);
        return true;
      }
      if (P == net::FramePeek::TooLarge)
        return false;
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || !fill(Left))
        return false;
    }
  }

  /// Reads one binary client response frame into \p R.
  bool readBinResponse(net::BinResponse &R, int TimeoutMs = 10000) {
    net::FrameHeader H;
    std::string Payload;
    if (!readFrame(H, Payload, TimeoutMs))
      return false;
    if (H.Magic != net::ClientRespMagic)
      return false;
    return net::decodeBinResponse(H.Type, Payload, R);
  }

  /// True once the peer closed the connection (drains pending bytes).
  bool waitEof(int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    while (!SawEof) {
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0)
        return false;
      if (!fill(Left) && !SawEof)
        return false;
    }
    return true;
  }

  std::string &buf() { return Buf; }
  bool sawEof() const { return SawEof; }

private:
  int Fd = -1;
  std::string Buf;
  bool SawEof = false;
};

/// Builds one binary client request frame.
std::string binRequest(net::BinVerb Verb, std::string_view Payload) {
  std::string Out;
  net::appendFrame(Out, net::ClientReqMagic, static_cast<uint8_t>(Verb),
                   Payload);
  return Out;
}

std::string docPayload(uint64_t Doc, std::string_view Blob = {}) {
  std::string P;
  persist::putVarint(P, Doc);
  P.append(Blob);
  return P;
}

/// Open/Submit payload: doc id, author TLV, then the tree blob.
std::string openPayload(uint64_t Doc, std::string_view Blob,
                        std::string_view Author = {}) {
  std::string P;
  persist::putVarint(P, Doc);
  persist::putVarint(P, Author.size());
  P.append(Author);
  P.append(Blob);
  return P;
}

//===----------------------------------------------------------------------===//
// Textual protocol
//===----------------------------------------------------------------------===//

TEST(NetServerTextual, RoundTrip) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  std::vector<std::string> Lines;
  ASSERT_TRUE(C.sendAll("open 1 (Add (a) (b))\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u) << Lines[0];

  ASSERT_TRUE(C.sendAll("submit 1 (Add (b) (a))\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("ok version=1", 0), 0u) << Lines[0];

  ASSERT_TRUE(C.sendAll("get 1\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].rfind("ok version=1", 0), 0u) << Lines[0];
  EXPECT_EQ(Lines[1], "(Add (b) (a))");

  ASSERT_TRUE(C.sendAll("rollback 1\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u) << Lines[0];

  ASSERT_TRUE(C.sendAll("stats\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].rfind("ok", 0), 0u);
  EXPECT_NE(Lines[1].find("\"documents\""), std::string::npos);

  ASSERT_TRUE(C.sendAll("health\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].rfind("ok", 0), 0u);

  // Errors are typed and the connection survives them.
  ASSERT_TRUE(C.sendAll("get 999\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("err ", 0), 0u);
  EXPECT_NE(Lines[0].find("code=no_such_document"), std::string::npos)
      << Lines[0];

  ASSERT_TRUE(C.sendAll("bogus-verb 1\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("err ", 0), 0u);

  // quit closes the connection without a response.
  ASSERT_TRUE(C.sendAll("quit\n"));
  EXPECT_TRUE(C.waitEof());
}

TEST(NetServerTextual, PipelinedRequestsAnswerInOrder) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // One write carrying the whole session: responses must come back in
  // arrival order even though workers may finish out of order.
  ASSERT_TRUE(C.sendAll("open 7 (a)\n"
                        "submit 7 (b)\n"
                        "submit 7 (c)\n"
                        "get 7\n"));
  std::vector<std::string> Lines;
  ASSERT_TRUE(C.readTextResponse(Lines));
  EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u) << Lines[0];
  ASSERT_TRUE(C.readTextResponse(Lines));
  EXPECT_EQ(Lines[0].rfind("ok version=1", 0), 0u) << Lines[0];
  ASSERT_TRUE(C.readTextResponse(Lines));
  EXPECT_EQ(Lines[0].rfind("ok version=2", 0), 0u) << Lines[0];
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].rfind("ok version=2", 0), 0u) << Lines[0];
  EXPECT_EQ(Lines[1], "(c)");
}

TEST(NetServerTextual, SplitWritesReassemble) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Dribble one command a few bytes at a time across separate packets.
  const std::string Cmd = "open 3 (Add (Num 1) (Num 2))\n";
  for (size_t I = 0; I < Cmd.size(); I += 5) {
    ASSERT_TRUE(C.sendAll(std::string_view(Cmd).substr(I, 5)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::string> Lines;
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u) << Lines[0];
}

TEST(NetServerTextual, OversizedLineKillsConnection) {
  net::NetServer::Config C;
  C.MaxLineBytes = 256;
  ServerHarness H(C);
  ASSERT_TRUE(H.Started);
  TcpClient Cl;
  ASSERT_TRUE(Cl.connect(H.port()));

  // No newline within the cap: the stream cannot be resynchronised.
  std::string Long(1024, 'x');
  ASSERT_TRUE(Cl.sendAll(Long));
  std::vector<std::string> Lines;
  ASSERT_TRUE(Cl.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("err ", 0), 0u);
  EXPECT_NE(Lines[0].find("code=frame_too_large"), std::string::npos)
      << Lines[0];
  EXPECT_TRUE(Cl.waitEof());
}

TEST(NetServerTextual, SixtyFourConcurrentConnections) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);

  constexpr size_t N = 64;
  std::vector<std::unique_ptr<TcpClient>> Clients;
  for (size_t I = 0; I != N; ++I) {
    auto C = std::make_unique<TcpClient>();
    ASSERT_TRUE(C->connect(H.port())) << "conn " << I;
    Clients.push_back(std::move(C));
  }

  // All 64 sockets are open at once; the server must hold them all.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (H.Srv->numConns() < N &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(H.Srv->numConns(), N);

  // Fire a write on every connection before reading any response, so
  // the requests genuinely overlap.
  for (size_t I = 0; I != N; ++I) {
    std::string Cmd = "open " + std::to_string(I + 1) + " (Add (a) (b))\n";
    ASSERT_TRUE(Clients[I]->sendAll(Cmd));
  }
  for (size_t I = 0; I != N; ++I) {
    std::vector<std::string> Lines;
    ASSERT_TRUE(Clients[I]->readTextResponse(Lines)) << "conn " << I;
    ASSERT_FALSE(Lines.empty());
    EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u)
        << "conn " << I << ": " << Lines[0];
  }
  for (size_t I = 0; I != N; ++I) {
    std::string Cmd = "submit " + std::to_string(I + 1) + " (Add (b) (a))\n";
    ASSERT_TRUE(Clients[I]->sendAll(Cmd));
  }
  for (size_t I = 0; I != N; ++I) {
    std::vector<std::string> Lines;
    ASSERT_TRUE(Clients[I]->readTextResponse(Lines)) << "conn " << I;
    ASSERT_FALSE(Lines.empty());
    EXPECT_EQ(Lines[0].rfind("ok version=1", 0), 0u)
        << "conn " << I << ": " << Lines[0];
  }

  // Every document really landed in the store.
  for (size_t I = 0; I != N; ++I) {
    service::DocumentSnapshot S = H.Store.snapshot(I + 1);
    ASSERT_TRUE(S.Ok) << "doc " << I + 1;
    EXPECT_EQ(S.Version, 1u);
    EXPECT_EQ(S.Text, "(Add (b) (a))");
  }
}

TEST(NetServerTextual, ResilientClientRoundTripAndCas) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);

  client::ResilientClient::Config CC;
  CC.Endpoints = {"127.0.0.1:" + std::to_string(H.port())};
  client::ResilientClient RC(CC);

  // Against a healthy server every request lands on the first attempt.
  client::ResilientClient::Result R = RC.open(1, "(Add (a) (b))", "ada");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Attempts, 1u);
  for (unsigned I = 0; I != 3; ++I) {
    R = RC.submit(1, I % 2 == 0 ? "(Add (b) (a))" : "(Add (a) (b))");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Version, I + 1);
    EXPECT_EQ(R.Attempts, 1u);
    EXPECT_FALSE(R.Deduped);
  }
  R = RC.get(1);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Version, 3u);
  EXPECT_NE(R.Payload.find("(Add (b) (a))"), std::string::npos);
  EXPECT_TRUE(RC.stats().Ok);
  EXPECT_TRUE(RC.health().Ok);

  // The CAS guard that makes retries exactly-once also fences a second
  // writer. Two out-of-band bumps, so the mismatch cannot be mistaken
  // for the client's own retried write (that ambiguity only exists at
  // version == expect+1, the dedup case).
  ASSERT_TRUE(H.Svc->submit(1, service::makeSExprBuilder("(Mul (a) (Num 7))"))
                  .Ok);
  ASSERT_TRUE(H.Svc->submit(1, service::makeSExprBuilder("(Mul (a) (Num 8))"))
                  .Ok);
  R = RC.submit(1, "(Add (b) (a))");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "cas_mismatch");
  EXPECT_FALSE(R.Deduped);

  // forgetVersion resyncs through a get and writing resumes.
  RC.forgetVersion(1);
  R = RC.submit(1, "(Add (b) (a))");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 6u);
  EXPECT_EQ(RC.clientStats().CasDedups, 0u);
}

//===----------------------------------------------------------------------===//
// Binary protocol
//===----------------------------------------------------------------------===//

TEST(NetServerBinary, RoundTrip) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Client-side trees, encoded with the persist codec.
  TreeContext Ctx(H.Sig);
  ParseResult V1 = parseSExpr(Ctx, "(Add (Num 1) (Num 2))");
  ParseResult V2 = parseSExpr(Ctx, "(Add (Num 1) (Mul (Num 2) (Num 3)))");
  ASSERT_TRUE(V1.ok() && V2.ok());
  std::string Blob1 = persist::encodeTree(H.Sig, V1.Root);
  std::string Blob2 = persist::encodeTree(H.Sig, V2.Root);

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Open, openPayload(5, Blob1, "ada"))));
  net::BinResponse R;
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 0u);

  ASSERT_TRUE(
      C.sendAll(binRequest(net::BinVerb::Submit, openPayload(5, Blob2, "grace"))));
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_GT(R.EditCount, 0u);

  // The submit response blob is the binary edit script.
  persist::DecodeScriptResult DS = persist::decodeEditScript(H.Sig, R.Blob);
  ASSERT_TRUE(DS.Ok) << DS.Error;
  EXPECT_EQ(DS.Script.size(), R.EditCount);

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Get, docPayload(5))));
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_EQ(R.Blob, printSExpr(H.Sig, V2.Root));

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Rollback, docPayload(5))));
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 0u);

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Stats, {})));
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Blob.find("\"documents\""), std::string::npos);

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Health, {})));
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;

  // Binary quit answers ok, then the server closes.
  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Quit, {})));
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(C.waitEof());
}

TEST(NetServerBinary, MixedProtocolsOnOneConnection) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Textual open, binary get, textual get: the first byte of each
  // message selects the parser.
  ASSERT_TRUE(C.sendAll("open 9 (Add (a) (b))\n"));
  std::vector<std::string> Lines;
  ASSERT_TRUE(C.readTextResponse(Lines));
  EXPECT_EQ(Lines[0].rfind("ok version=0", 0), 0u) << Lines[0];

  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Get, docPayload(9))));
  net::BinResponse R;
  ASSERT_TRUE(C.readBinResponse(R));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Blob, "(Add (a) (b))");

  ASSERT_TRUE(C.sendAll("get 9\n"));
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[1], "(Add (a) (b))");
}

TEST(NetServerBinary, OversizedFrameKillsConnection) {
  net::NetServer::Config Cfg;
  Cfg.MaxFrameBytes = 1024;
  ServerHarness H(Cfg);
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // A header claiming a payload over the cap: typed error, then close,
  // because the stream position after it is untrustworthy.
  std::string Hdr;
  Hdr.push_back(static_cast<char>(net::ClientReqMagic));
  Hdr.push_back(static_cast<char>(net::BinVerb::Open));
  uint32_t Len = 1u << 20;
  Hdr.append(reinterpret_cast<const char *>(&Len), 4);
  ASSERT_TRUE(C.sendAll(Hdr));

  net::BinResponse R;
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, service::ErrCode::FrameTooLarge) << R.Error;
  EXPECT_TRUE(C.waitEof());
}

TEST(NetServerBinary, MalformedPayloadKeepsConnectionAlive) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Well-formed frame, garbage tree blob: typed MalformedFrame, and the
  // connection must survive.
  std::string Garbage = openPayload(11, "\xff\xfe\xfd not a tree blob");
  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Open, Garbage)));
  net::BinResponse R;
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, service::ErrCode::MalformedFrame) << R.Error;

  // Trailing junk after a Get's doc id is also malformed, not fatal.
  ASSERT_TRUE(
      C.sendAll(binRequest(net::BinVerb::Get, docPayload(11, "junk"))));
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, service::ErrCode::MalformedFrame) << R.Error;

  // Unknown verb: same contract.
  ASSERT_TRUE(C.sendAll(binRequest(static_cast<net::BinVerb>(99), {})));
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, service::ErrCode::MalformedFrame) << R.Error;

  // The connection still serves real requests.
  ASSERT_TRUE(C.sendAll(binRequest(net::BinVerb::Health, {})));
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(NetServerBinary, ReplicationMagicRejectedOnClientPort) {
  ServerHarness H;
  ASSERT_TRUE(H.Started);
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));

  std::string F;
  net::appendFrame(F, net::ReplMagic, 1, "hello");
  ASSERT_TRUE(C.sendAll(F));
  net::BinResponse R;
  ASSERT_TRUE(C.readBinResponse(R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, service::ErrCode::MalformedFrame) << R.Error;
  EXPECT_TRUE(C.waitEof());
}

//===----------------------------------------------------------------------===//
// Fuzz: nothing a client sends crashes the loop.
//===----------------------------------------------------------------------===//

TEST(NetServerFuzz, RandomBytesNeverCrashTheLoop) {
  uint64_t Seed = tests::testSeed(0xfeedbeef);
  SEED_TRACE(Seed);
  Rng R(Seed);

  net::NetServer::Config Cfg;
  Cfg.MaxLineBytes = 4096;
  Cfg.MaxFrameBytes = 4096;
  ServerHarness H(Cfg);
  ASSERT_TRUE(H.Started);

  uint64_t Iters = tests::testIters("TRUEDIFF_CHAOS_ITERS", 60);
  for (uint64_t I = 0; I != Iters; ++I) {
    TcpClient C;
    ASSERT_TRUE(C.connect(H.port()));
    std::string Bytes;
    size_t Len = 1 + R.below(512);
    // Bias toward the binary magics so frame parsing gets exercised,
    // including truncated headers and wild lengths.
    switch (R.below(4)) {
    case 0:
      Bytes.push_back(static_cast<char>(net::ClientReqMagic));
      break;
    case 1:
      Bytes.push_back(static_cast<char>(net::ReplMagic));
      break;
    default:
      break;
    }
    while (Bytes.size() < Len)
      Bytes.push_back(static_cast<char>(R.below(256)));
    if (R.chance(50))
      Bytes.push_back('\n');
    ASSERT_TRUE(C.sendAll(Bytes));
    // Half the time, read whatever comes back; the other half, just
    // slam the connection shut mid-response.
    if (R.chance(50))
      C.fill(20);
  }

  // The loop survived: a fresh connection still gets answers.
  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendAll("health\n"));
  std::vector<std::string> Lines;
  ASSERT_TRUE(C.readTextResponse(Lines));
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Lines[0].rfind("ok", 0), 0u) << Lines[0];
}

//===----------------------------------------------------------------------===//
// Idle timeout
//===----------------------------------------------------------------------===//

TEST(NetServerTimeout, IdleConnectionsAreReaped) {
  net::NetServer::Config Cfg;
  Cfg.IdleTimeoutMs = 100;
  ServerHarness H(Cfg);
  ASSERT_TRUE(H.Started);

  TcpClient C;
  ASSERT_TRUE(C.connect(H.port()));
  // Never send a byte: the coarse idle scan must close us.
  EXPECT_TRUE(C.waitEof(10000));

  // An active connection with traffic inside the window survives and
  // still answers.
  TcpClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  std::vector<std::string> Lines;
  ASSERT_TRUE(C2.sendAll("health\n"));
  ASSERT_TRUE(C2.readTextResponse(Lines));
  EXPECT_EQ(Lines[0].rfind("ok", 0), 0u) << Lines[0];
}

} // namespace

//===- tests/gumtree_test.cpp - Unit tests for the Gumtree baseline --------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gumtree/GumTree.h"

#include "python/Python.h"
#include "support/Rng.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::gumtree;
using namespace truediff::testlang;

namespace {

class GumTreeTest : public ::testing::Test {
protected:
  GumTreeTest() : Sig(makeExpSignature()), Ctx(Sig) {}

  RNode *rose(Tree *T) { return Forest.fromTree(Sig, T); }

  /// Diffs and asserts the simulated script reproduces the target.
  GumTreeResult checkedDiff(RNode *Src, RNode *Dst,
                            GumTreeOptions Opts = GumTreeOptions()) {
    GumTreeResult R = gumtreeDiff(Forest, Src, Dst, Opts);
    EXPECT_TRUE(R.PatchedSource != nullptr &&
                RoseForest::equals(R.PatchedSource, Dst))
        << "patched: "
        << (R.PatchedSource ? RoseForest::toString(Sig, R.PatchedSource)
                            : "<null>")
        << "\ntarget:  " << RoseForest::toString(Sig, Dst);
    return R;
  }

  SignatureTable Sig;
  TreeContext Ctx;
  RoseForest Forest;
};

TEST_F(GumTreeTest, RoseTreeConversion) {
  Tree *T = add(Ctx, num(Ctx, 1), call(Ctx, "f", var(Ctx, "x")));
  RNode *R = rose(T);
  EXPECT_EQ(R->Size, 4u);
  EXPECT_EQ(R->Height, 3u);
  EXPECT_EQ(R->Kids[0]->Label, "1");
  EXPECT_EQ(R->Kids[1]->Label, "\"f\"");
  EXPECT_EQ(RoseForest::toString(Sig, R),
            "Add(Num{1},Call{\"f\"}(Var{\"x\"}))");
}

TEST_F(GumTreeTest, IsomorphismByHash) {
  RNode *A = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *B = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *C = rose(add(Ctx, num(Ctx, 2), num(Ctx, 1)));
  EXPECT_TRUE(A->isomorphicTo(B));
  EXPECT_FALSE(A->isomorphicTo(C));
}

TEST_F(GumTreeTest, TopDownMapsIdenticalSubtrees) {
  RNode *Src = rose(add(Ctx, sub(Ctx, num(Ctx, 1), num(Ctx, 2)),
                        mul(Ctx, num(Ctx, 3), num(Ctx, 4))));
  RNode *Dst = rose(mul(Ctx, sub(Ctx, num(Ctx, 1), num(Ctx, 2)),
                        mul(Ctx, num(Ctx, 3), num(Ctx, 4))));
  GumTreeOptions Opts;
  MappingStore M = computeMappings(Src, Dst, Opts);
  // Sub(1,2) is unique and isomorphic: must be mapped with descendants.
  EXPECT_TRUE(M.hasSrc(Src->Kids[0]));
  EXPECT_TRUE(M.areMapped(Src->Kids[0], Dst->Kids[0]));
  EXPECT_TRUE(M.areMapped(Src->Kids[0]->Kids[0], Dst->Kids[0]->Kids[0]));
}

TEST_F(GumTreeTest, DiceCoefficient) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(sub(Ctx, num(Ctx, 1), num(Ctx, 2)));
  MappingStore M;
  M.add(Src->Kids[0], Dst->Kids[0]);
  EXPECT_DOUBLE_EQ(diceCoefficient(Src, Dst, M), 0.5);
  M.add(Src->Kids[1], Dst->Kids[1]);
  EXPECT_DOUBLE_EQ(diceCoefficient(Src, Dst, M), 1.0);
}

TEST_F(GumTreeTest, IdenticalTreesNeedNoActions) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  GumTreeResult R = checkedDiff(Src, Dst);
  EXPECT_EQ(R.patchSize(), 0u);
}

TEST_F(GumTreeTest, LabelChangeYieldsUpdate) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(add(Ctx, num(Ctx, 1), num(Ctx, 9)));
  GumTreeResult R = checkedDiff(Src, Dst);
  ASSERT_EQ(R.patchSize(), 1u);
  EXPECT_EQ(R.Actions[0].Kind, ActionKind::Update);
  EXPECT_EQ(R.Actions[0].NewLabel, "9");
}

TEST_F(GumTreeTest, PaperSwapExampleYieldsTwoMoves) {
  // Section 1: Chawathe-style tools express the swap with two moves.
  RNode *Src = rose(add(Ctx, sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")),
                        mul(Ctx, leaf(Ctx, "c"), leaf(Ctx, "d"))));
  RNode *Dst = rose(add(Ctx, leaf(Ctx, "d"),
                        mul(Ctx, leaf(Ctx, "c"),
                            sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")))));
  GumTreeResult R = checkedDiff(Src, Dst);
  size_t Moves = 0;
  for (const Action &A : R.Actions)
    Moves += A.Kind == ActionKind::Move;
  EXPECT_EQ(R.patchSize(), 2u) << "expected the optimal 2-move script";
  EXPECT_EQ(Moves, 2u);
}

TEST_F(GumTreeTest, InsertionIntoContainer) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(add(Ctx, num(Ctx, 1), mul(Ctx, num(Ctx, 2), num(Ctx, 3))));
  GumTreeResult R = checkedDiff(Src, Dst);
  size_t Inserts = 0;
  for (const Action &A : R.Actions)
    Inserts += A.Kind == ActionKind::Insert;
  EXPECT_GE(Inserts, 2u); // Mul and Num(3)
}

TEST_F(GumTreeTest, DeletionOfSubtree) {
  RNode *Src = rose(add(Ctx, mul(Ctx, num(Ctx, 7), num(Ctx, 8)), num(Ctx, 1)));
  RNode *Dst = rose(num(Ctx, 1));
  GumTreeResult R = checkedDiff(Src, Dst);
  size_t Deletes = 0;
  for (const Action &A : R.Actions)
    Deletes += A.Kind == ActionKind::Delete;
  EXPECT_GE(Deletes, 3u);
}

TEST_F(GumTreeTest, RootReplacement) {
  RNode *Src = rose(num(Ctx, 1));
  RNode *Dst = rose(call(Ctx, "f", var(Ctx, "x")));
  checkedDiff(Src, Dst);
}

TEST_F(GumTreeTest, BottomUpMatchesRenamedContainer) {
  // Call("f", big) vs Call("g", big): top-down maps the payload, bottom-up
  // must match the renamed Call container via dice.
  Tree *Payload1 = add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)),
                       mul(Ctx, num(Ctx, 3), num(Ctx, 4)));
  Tree *Payload2 = add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)),
                       mul(Ctx, num(Ctx, 3), num(Ctx, 4)));
  RNode *Src = rose(call(Ctx, "f", Payload1));
  RNode *Dst = rose(call(Ctx, "g", Payload2));
  GumTreeResult R = checkedDiff(Src, Dst);
  // One update action suffices; no deletes or inserts.
  ASSERT_EQ(R.patchSize(), 1u);
  EXPECT_EQ(R.Actions[0].Kind, ActionKind::Update);
}

TEST_F(GumTreeTest, ActionToStringIsReadable) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(add(Ctx, num(Ctx, 1), num(Ctx, 3)));
  GumTreeResult R = checkedDiff(Src, Dst);
  ASSERT_EQ(R.Actions.size(), 1u);
  EXPECT_EQ(actionToString(Sig, R.Actions[0]), "update Num{2} to {3}");
}

TEST_F(GumTreeTest, AmbiguousIsomorphicPairsResolveByParentDice) {
  // Two identical Num(1) leaves on each side; the one under the matching
  // parent must win. MinHeight=1 so leaves take part in the top-down
  // phase.
  RNode *Src = rose(add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)),
                        sub(Ctx, num(Ctx, 1), num(Ctx, 3))));
  RNode *Dst = rose(add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)),
                        sub(Ctx, num(Ctx, 1), num(Ctx, 9))));
  GumTreeOptions Opts;
  Opts.MinHeight = 1;
  MappingStore M = computeMappings(Src, Dst, Opts);
  // Mul(1,2) is unique-isomorphic; the ambiguous Num(1)s must pair with
  // their own parents: Mul's 1 with Mul's 1, Sub's 1 with Sub's 1.
  EXPECT_EQ(M.dstOf(Src->Kids[0]->Kids[0]), Dst->Kids[0]->Kids[0]);
  EXPECT_EQ(M.dstOf(Src->Kids[1]->Kids[0]), Dst->Kids[1]->Kids[0]);
}

TEST_F(GumTreeTest, MinHeightGatesTopDownPhase) {
  RNode *Src = rose(add(Ctx, num(Ctx, 1), num(Ctx, 2)));
  RNode *Dst = rose(sub(Ctx, num(Ctx, 1), num(Ctx, 3)));
  GumTreeOptions Tall;
  Tall.MinHeight = 3; // taller than anything here: top-down is inert
  Tall.MaxRecoverySize = 0;
  Tall.MinDice = 0.99;
  MappingStore M = computeMappings(Src, Dst, Tall);
  EXPECT_EQ(M.size(), 0u);
}

TEST_F(GumTreeTest, ConsListsFlattenToBlockNodes) {
  // The Python statement-list encoding becomes one n-ary block node.
  SignatureTable PySig = python::makePythonSignature();
  TreeContext PyCtx(PySig);
  auto M = python::parsePython(PyCtx, "a = 1\nb = 2\nc = 3\n");
  ASSERT_TRUE(M.ok());
  RNode *R = Forest.fromTree(PySig, M.Module);
  // Module -> block(list) -> three Assign children.
  ASSERT_EQ(R->Kids.size(), 1u);
  EXPECT_EQ(PySig.name(R->Kids[0]->Type), "StmtNil");
  EXPECT_EQ(R->Kids[0]->Kids.size(), 3u);
  // Without flattening the spine survives.
  RNode *Spine = Forest.fromTree(PySig, M.Module, /*FlattenLists=*/false);
  EXPECT_EQ(PySig.name(Spine->Kids[0]->Type), "StmtCons");
}

TEST_F(GumTreeTest, MappingStoreIsBidirectional) {
  RNode *A = rose(num(Ctx, 1));
  RNode *B = rose(num(Ctx, 1));
  MappingStore M;
  M.add(A, B);
  EXPECT_EQ(M.dstOf(A), B);
  EXPECT_EQ(M.srcOf(B), A);
  EXPECT_TRUE(M.areMapped(A, B));
  EXPECT_FALSE(M.areMapped(B, A));
  EXPECT_EQ(M.size(), 1u);
}

class GumTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

/// Random rose trees: scripts must always reproduce the target.
TEST_P(GumTreeRandomTest, ScriptsReproduceTarget) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  RoseForest Forest;
  Rng R(GetParam() * 104729 + 17);

  std::function<Tree *(int)> Gen = [&](int Depth) -> Tree * {
    if (Depth <= 1 || R.chance(30))
      return R.chance(50) ? num(Ctx, R.range(0, 5))
                          : var(Ctx, (const char *[]){"x", "y"}[R.below(2)]);
    switch (R.below(4)) {
    case 0:
      return add(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    case 1:
      return sub(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    case 2:
      return mul(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    default:
      return call(Ctx, "f", Gen(Depth - 1));
    }
  };

  RNode *Src = Forest.fromTree(Sig, Gen(6));
  RNode *Dst = Forest.fromTree(Sig, Gen(6));
  GumTreeResult Result = gumtreeDiff(Forest, Src, Dst, GumTreeOptions());
  ASSERT_NE(Result.PatchedSource, nullptr);
  EXPECT_TRUE(RoseForest::equals(Result.PatchedSource, Dst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GumTreeRandomTest,
                         ::testing::Range<uint64_t>(0, 50));

} // namespace

//===- tests/integration_test.cpp - Full-pipeline integration tests --------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the complete evaluation pipeline on the synthetic commit corpus:
/// parse both versions, diff with all four tools, and verify every
/// invariant -- truediff scripts type check (Conjecture 4.2) and patch the
/// standard semantics to the target (Conjecture 4.3), Gumtree actions
/// reproduce the target rose tree, hdiff and lcsdiff patches apply.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "lcsdiff/LcsDiff.h"
#include "python/Python.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <gtest/gtest.h>

using namespace truediff;

namespace {

class IntegrationTest : public ::testing::Test {
protected:
  IntegrationTest() : Sig(python::makePythonSignature()) {}

  std::vector<corpus::CommitPair> corpusPairs(unsigned NumPairs,
                                              uint64_t Seed) {
    corpus::CorpusOptions Opts;
    Opts.NumPairs = NumPairs;
    Opts.Seed = Seed;
    return corpus::buildCommitCorpus(Opts);
  }

  SignatureTable Sig;
};

TEST_F(IntegrationTest, TrueDiffInvariantsOnCorpus) {
  std::vector<corpus::CommitPair> Pairs = corpusPairs(40, 7);
  LinearTypeChecker Checker(Sig);

  for (size_t I = 0; I != Pairs.size(); ++I) {
    TreeContext Ctx(Sig);
    auto Before = python::parsePython(Ctx, Pairs[I].Before);
    auto After = python::parsePython(Ctx, Pairs[I].After);
    ASSERT_TRUE(Before.ok()) << Before.Error;
    ASSERT_TRUE(After.ok()) << After.Error;

    MTree Standard = MTree::fromTree(Sig, Before.Module);
    uint64_t SrcSize = Before.Module->size();
    uint64_t DstSize = After.Module->size();

    TrueDiff Diff(Ctx);
    DiffResult Result = Diff.compareTo(Before.Module, After.Module);

    auto TC = Checker.checkWellTyped(Result.Script);
    ASSERT_TRUE(TC.Ok) << "pair " << I << ": " << TC.Error;

    auto PR = Standard.patchChecked(Result.Script);
    ASSERT_TRUE(PR.Ok) << "pair " << I << ": " << PR.Error;
    EXPECT_TRUE(Standard.equalsTree(After.Module)) << "pair " << I;
    EXPECT_TRUE(treeEqualsModuloUris(Result.Patched, After.Module));
    EXPECT_LE(Result.Script.size(), SrcSize + DstSize + 2);
  }
}

TEST_F(IntegrationTest, ChainedHistoryInOneContext) {
  // A whole history through one context, reusing patched trees, as the
  // incremental driver does.
  corpus::CorpusOptions Opts;
  Opts.NumPairs = 15;
  Opts.CommitsPerFile = 15;
  Opts.Seed = 21;
  std::vector<corpus::CommitPair> Pairs = corpus::buildCommitCorpus(Opts);

  TreeContext Ctx(Sig);
  LinearTypeChecker Checker(Sig);
  auto First = python::parsePython(Ctx, Pairs[0].Before);
  ASSERT_TRUE(First.ok());
  Tree *Current = First.Module;
  std::string CurrentSrc = Pairs[0].Before;

  for (const corpus::CommitPair &Pair : Pairs) {
    if (Pair.Before != CurrentSrc)
      break; // next file started
    auto Next = python::parsePython(Ctx, Pair.After);
    ASSERT_TRUE(Next.ok());
    TrueDiff Diff(Ctx);
    DiffResult Result = Diff.compareTo(Current, Next.Module);
    ASSERT_TRUE(Checker.checkWellTyped(Result.Script).Ok);
    EXPECT_TRUE(treeEqualsModuloUris(Result.Patched, Next.Module));
    Current = Result.Patched;
    CurrentSrc = Pair.After;
  }
}

TEST_F(IntegrationTest, GumtreeReproducesCorpusTargets) {
  std::vector<corpus::CommitPair> Pairs = corpusPairs(15, 11);
  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    gumtree::RoseForest Forest;
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    ASSERT_TRUE(Before.ok() && After.ok());
    gumtree::RNode *Src = Forest.fromTree(Sig, Before.Module);
    gumtree::RNode *Dst = Forest.fromTree(Sig, After.Module);
    gumtree::GumTreeResult R = gumtree::gumtreeDiff(Forest, Src, Dst);
    ASSERT_NE(R.PatchedSource, nullptr);
    EXPECT_TRUE(gumtree::RoseForest::equals(R.PatchedSource, Dst));
  }
}

TEST_F(IntegrationTest, HdiffAppliesOnCorpus) {
  std::vector<corpus::CommitPair> Pairs = corpusPairs(15, 13);
  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    ASSERT_TRUE(Before.ok() && After.ok());
    hdiff::HDiff Differ(Ctx);
    hdiff::HDiffPatch Patch = Differ.diff(Before.Module, After.Module);
    Tree *Applied = Differ.apply(Patch, Before.Module);
    ASSERT_NE(Applied, nullptr);
    EXPECT_TRUE(treeEqualsModuloUris(Applied, After.Module));
  }
}

TEST_F(IntegrationTest, LcsAppliesOnCorpus) {
  std::vector<corpus::CommitPair> Pairs = corpusPairs(15, 17);
  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    ASSERT_TRUE(Before.ok() && After.ok());
    lcsdiff::LcsScript Script = lcsdiff::lcsDiff(Before.Module, After.Module);
    Tree *Applied = lcsdiff::applyLcs(Ctx, Before.Module, Script);
    ASSERT_NE(Applied, nullptr);
    EXPECT_TRUE(treeEqualsModuloUris(Applied, After.Module));
  }
}

TEST_F(IntegrationTest, ConcisenessOrderOnCorpus) {
  // The paper's qualitative claims: truediff patches are in Gumtree's
  // ballpark, while hdiff patches are much larger and lcsdiff scripts
  // mention the whole traversal.
  std::vector<corpus::CommitPair> Pairs = corpusPairs(25, 19);
  double TrueDiffTotal = 0, GumtreeTotal = 0, HdiffTotal = 0,
         LcsTotal = 0;
  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    gumtree::RoseForest Forest;
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    ASSERT_TRUE(Before.ok() && After.ok());

    hdiff::HDiff HDiffer(Ctx);
    HdiffTotal += static_cast<double>(
        HDiffer.diff(Before.Module, After.Module).numConstructors());
    LcsTotal += static_cast<double>(
        lcsdiff::lcsDiff(Before.Module, After.Module).size());
    GumtreeTotal += static_cast<double>(
        gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Before.Module),
                             Forest.fromTree(Sig, After.Module))
            .patchSize());

    TrueDiff Diff(Ctx);
    TrueDiffTotal += static_cast<double>(
        Diff.compareTo(Before.Module, After.Module).Script.coalescedSize());
  }
  // hdiff and lcsdiff patches are an order of magnitude larger.
  EXPECT_GT(HdiffTotal, 3 * TrueDiffTotal);
  EXPECT_GT(LcsTotal, 3 * TrueDiffTotal);
  // truediff within a small factor of Gumtree (paper: ratio ~1.01).
  EXPECT_LT(TrueDiffTotal, 3 * GumtreeTotal + 50);
}

} // namespace

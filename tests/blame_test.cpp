//===- tests/blame_test.cpp - Blame/provenance subsystem tests -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the blame subsystem (src/blame): the incremental-equals-
/// replay property over seeded mutation chains (the subsystem's core
/// correctness claim, run on both digest paths and both digest
/// policies), the rollback attribution rule, the typed degradation at
/// the history-ring eviction boundary, canonical snapshot round trips,
/// memory-budget accounting, the author token and blame/history verbs
/// of the wire protocol, and durability: a crash-recovered provenance
/// index must be byte-identical to the live one. Runs under ASan/UBSan
/// and TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "blame/Render.h"

#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "persist/BinaryCodec.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"
#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"

#include "TestLang.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

constexpr uint64_t NumDocs = 6;

/// A unique scratch directory, removed on destruction (the data dirs
/// here hold only WAL segments and snapshot files).
class TempDir {
public:
  TempDir() {
    std::string Tmpl = ::testing::TempDir() + "blameXXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : "";
  }
  ~TempDir() {
    for (const auto &[Index, Path] : persist::listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const persist::SnapshotFileName &F : persist::listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

/// Builder that decodes a binary tree blob -- lets the workload reuse
/// corpus-generated JSON trees across document contexts.
TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](TreeContext &Ctx) -> BuildResult {
    persist::DecodeTreeResult D =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, ErrCode::MalformedFrame};
    return {D.Root, "", ErrCode::None};
  };
}

/// One captured script-stream event, erase included, in emission order.
/// The replay index folds exactly these -- the from-scratch half of the
/// incremental-equals-replay property.
struct StreamEvent {
  bool IsErase = false;
  DocId Doc = 0;
  uint64_t Version = 0;
  DocumentStore::StoreOp Op = DocumentStore::StoreOp::Open;
  std::string Author;
  EditScript Script;
};

/// Drives a seeded workload of authored opens, submits, rollbacks, and
/// erases against \p Store, recording every stream event into \p Log.
void runSeededWorkload(DocumentStore &Store, const SignatureTable &Sig,
                       uint64_t Steps, uint64_t Seed,
                       std::vector<StreamEvent> *Log = nullptr) {
  if (Log != nullptr) {
    Store.addScriptListener([Log](DocId Doc, uint64_t Version,
                                  DocumentStore::StoreOp Op,
                                  const EditScript &Script,
                                  const DocumentStore::ScriptInfo &Info) {
      StreamEvent E;
      E.Doc = Doc;
      E.Version = Version;
      E.Op = Op;
      E.Author = std::string(Info.Author);
      E.Script = Script;
      Log->push_back(std::move(E));
    });
    Store.addEraseListener([Log](DocId Doc) {
      StreamEvent E;
      E.IsErase = true;
      E.Doc = Doc;
      Log->push_back(std::move(E));
    });
  }

  static const char *const Authors[] = {"ada", "grace", "barbara", "edsger"};
  Rng R(Seed);
  TreeContext Ctx(Sig);
  std::map<uint64_t, Tree *> Model;
  corpus::JsonGenOptions Opts;
  Opts.MaxDepth = 3;
  Opts.MaxFanout = 4;
  for (uint64_t I = 0; I != Steps; ++I) {
    uint64_t Doc = 1 + R.below(NumDocs);
    const char *Author = Authors[R.below(4)];
    auto It = Model.find(Doc);
    if (It == Model.end()) {
      Tree *T = corpus::generateJson(Ctx, R, Opts);
      StoreResult SR =
          Store.open(Doc, blobBuilder(Sig, persist::encodeTree(Sig, T)), Author);
      ASSERT_TRUE(SR.Ok) << SR.Error;
      Model[Doc] = T;
      continue;
    }
    unsigned Dice = static_cast<unsigned>(R.below(100));
    if (Dice < 70) {
      Tree *Next = corpus::mutateJson(Ctx, R, It->second);
      SubmitOptions SubOpts;
      SubOpts.Author = Author;
      StoreResult SR = Store.submit(
          Doc, blobBuilder(Sig, persist::encodeTree(Sig, Next)), SubOpts);
      ASSERT_TRUE(SR.Ok) << SR.Error;
      It->second = Next;
    } else if (Dice < 85) {
      Store.rollback(Doc); // may fail cleanly at version 0
    } else {
      Store.erase(Doc);
      Model.erase(Doc);
    }
  }
}

/// The incremental-equals-replay property under one store configuration:
/// an index maintained by the live listener must serialize byte-identically
/// to one built by folding the captured stream from scratch.
void checkIncrementalEqualsReplay(DocumentStore::Config StoreCfg,
                                  uint64_t Steps, uint64_t Seed) {
  SignatureTable Sig = json::makeJsonSignature();
  DocumentStore Store(Sig, StoreCfg);
  blame::ProvenanceIndex Incremental;
  Incremental.attach(Store);
  std::vector<StreamEvent> Log;
  runSeededWorkload(Store, Sig, Steps, Seed, &Log);
  ASSERT_FALSE(Log.empty());

  blame::ProvenanceIndex Replay;
  for (const StreamEvent &E : Log) {
    if (E.IsErase)
      Replay.eraseDoc(E.Doc);
    else
      Replay.apply(E.Doc, E.Version, E.Op, E.Author, E.Script);
  }

  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc)
    EXPECT_EQ(Incremental.snapshotDoc(Doc), Replay.snapshotDoc(Doc))
        << "doc " << Doc << " diverged (seed " << Seed << ")";
  blame::ProvenanceIndex::Stats A = Incremental.stats();
  blame::ProvenanceIndex::Stats B = Replay.stats();
  EXPECT_EQ(A.Docs, B.Docs);
  EXPECT_EQ(A.Nodes, B.Nodes);
}

/// S-expression builder over the test language.
TreeBuilder expBuilder(const std::string &Text) {
  return makeSExprBuilder(Text);
}

/// URI of the first node tagged \p Tag in a whole-tree blame payload
/// (lines are "<indent><tag>#<uri> ..."); NullURI when absent.
URI findTaggedUri(const std::string &Payload, const std::string &Tag) {
  std::string Needle = Tag + "#";
  size_t Pos = 0;
  while ((Pos = Payload.find(Needle, Pos)) != std::string::npos) {
    bool AtStart = Pos == 0 || Payload[Pos - 1] == ' ' ||
                   Payload[Pos - 1] == '\n';
    if (AtStart)
      return std::strtoull(Payload.c_str() + Pos + Needle.size(), nullptr, 10);
    Pos += Needle.size();
  }
  return NullURI;
}

} // namespace

//===----------------------------------------------------------------------===//
// The core property: incremental == from-scratch replay
//===----------------------------------------------------------------------===//

TEST(BlameProperty, IncrementalEqualsReplayWarmSha256) {
  DocumentStore::Config C;
  checkIncrementalEqualsReplay(C, 500, 0xb1a3e001);
}

TEST(BlameProperty, IncrementalEqualsReplayColdSha256) {
  DocumentStore::Config C;
  C.PersistDigests = false;
  checkIncrementalEqualsReplay(C, 500, 0xb1a3e002);
}

TEST(BlameProperty, IncrementalEqualsReplayWarmFast128) {
  DocumentStore::Config C;
  C.Digest = DigestPolicy::Fast128;
  checkIncrementalEqualsReplay(C, 500, 0xb1a3e003);
}

TEST(BlameProperty, IncrementalEqualsReplayColdFast128) {
  DocumentStore::Config C;
  C.Digest = DigestPolicy::Fast128;
  C.PersistDigests = false;
  checkIncrementalEqualsReplay(C, 500, 0xb1a3e004);
}

//===----------------------------------------------------------------------===//
// Attribution rules
//===----------------------------------------------------------------------===//

TEST(BlameAttribution, OpenIntroducesEveryNode) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  Response R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Every line of the tree is attributed to ada's open.
  EXPECT_EQ(R.Payload.find("intro=v0:ada last=v0:ada insert"),
            R.Payload.find("intro="));
  EXPECT_EQ(R.Payload.find("grace"), std::string::npos);
}

TEST(BlameAttribution, UpdateReattributesLastTouchOnly) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  SubmitOptions Opts;
  Opts.Author = "grace";
  ASSERT_TRUE(Store.submit(1, expBuilder("(Add (Num 9) (Num 2))"), Opts).Ok);

  Response R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(R.Ok) << R.Error;
  // The updated literal's node: intro stays ada, last becomes grace.
  EXPECT_NE(R.Payload.find("intro=v0:ada last=v1:grace update"),
            std::string::npos)
      << R.Payload;
  // Untouched nodes keep their open attribution.
  EXPECT_NE(R.Payload.find("intro=v0:ada last=v0:ada insert"),
            std::string::npos)
      << R.Payload;
}

TEST(BlameAttribution, RollbackAttributesToTargetVersionAuthor) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  SubmitOptions Opts;
  Opts.Author = "grace";
  ASSERT_TRUE(Store.submit(1, expBuilder("(Add (Num 9) (Num 2))"), Opts).Ok);
  Opts.Author = "barbara";
  ASSERT_TRUE(Store.submit(1, expBuilder("(Add (Num 7) (Num 2))"), Opts).Ok);

  // Rollback v2 -> v1: the touched node is re-attributed to grace (the
  // target version's author), never to whoever asked for the rollback.
  ASSERT_TRUE(Store.rollback(1).Ok);
  Response R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Payload.find("last=v1:grace rollback"), std::string::npos)
      << R.Payload;
  EXPECT_EQ(R.Payload.find("barbara"), std::string::npos) << R.Payload;

  // Rollback v1 -> v0: the target is the open, so attribution falls
  // back to the open's author.
  ASSERT_TRUE(Store.rollback(1).Ok);
  R = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Payload.find("last=v0:ada rollback"), std::string::npos)
      << R.Payload;
  EXPECT_EQ(R.Payload.find("grace"), std::string::npos) << R.Payload;
}

TEST(BlameAttribution, SingleNodeProbeNeedsNoStore) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  Response Tree = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(Tree.Ok);
  URI Root = findTaggedUri(Tree.Payload, "Add");
  ASSERT_NE(Root, NullURI);

  blame::NodeProvenance P;
  ASSERT_TRUE(Prov.blameNode(1, Root, P));
  EXPECT_EQ(P.IntroVersion, 0u);
  EXPECT_EQ(P.IntroAuthor, "ada");
  EXPECT_EQ(P.LastAuthor, "ada");
  EXPECT_EQ(P.LastOp, blame::ProvOp::Insert);
  EXPECT_FALSE(Prov.blameNode(1, Root + 100000, P));
  EXPECT_FALSE(Prov.blameNode(42, Root, P));
}

//===----------------------------------------------------------------------===//
// History and the ring-eviction boundary
//===----------------------------------------------------------------------===//

TEST(BlameHistory, EvictionDegradesTyped) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config C;
  C.HistoryCapacity = 4;
  DocumentStore Store(Sig, C);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  // v1 introduces a Call node (grace); later submits only touch the
  // right-hand Num, pushing v1 out of the 4-entry ring.
  SubmitOptions Opts;
  Opts.Author = "grace";
  ASSERT_TRUE(
      Store.submit(1, expBuilder("(Add (Call (Num 1) \"f\") (Num 2))"), Opts)
          .Ok);
  Response Tree = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(Tree.Ok);
  URI CallUri = findTaggedUri(Tree.Payload, "Call");
  ASSERT_NE(CallUri, NullURI);

  Opts.Author = "barbara";
  for (int N = 10; N != 16; ++N)
    ASSERT_TRUE(Store.submit(1,
                             expBuilder("(Add (Call (Num 1) \"f\") (Num " +
                                        std::to_string(N) + "))"),
                             Opts)
                    .Ok);

  // The ring now holds v4..v7; nothing retained touches the Call node
  // and its v1 introduction is gone: a typed error, never a silently
  // empty chain.
  Response H = blame::historyResponse(Store, Prov, 1, CallUri);
  EXPECT_FALSE(H.Ok);
  EXPECT_EQ(H.Code, ErrCode::HistoryExhausted);
  EXPECT_NE(H.Error.find("evicted"), std::string::npos) << H.Error;

  // Attribution itself never degrades: the index still knows v1/grace.
  blame::NodeProvenance P;
  ASSERT_TRUE(Prov.blameNode(1, CallUri, P));
  EXPECT_EQ(P.IntroVersion, 1u);
  EXPECT_EQ(P.IntroAuthor, "grace");

  // Touch the node again: its chain is now partially retained, so the
  // answer succeeds but carries an explicit eviction marker.
  Opts.Author = "edsger";
  ASSERT_TRUE(
      Store.submit(1, expBuilder("(Add (Call (Num 1) \"g\") (Num 15))"), Opts)
          .Ok);
  H = blame::historyResponse(Store, Prov, 1, CallUri);
  ASSERT_TRUE(H.Ok) << H.Error;
  EXPECT_NE(H.Payload.find("v8 by edsger"), std::string::npos) << H.Payload;
  EXPECT_NE(H.Payload.find("evicted: revisions before v"), std::string::npos)
      << H.Payload;
}

TEST(BlameHistory, CompleteChainListsAllTouchesAndOpen) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  SubmitOptions Opts;
  Opts.Author = "grace";
  ASSERT_TRUE(Store.submit(1, expBuilder("(Add (Num 9) (Num 2))"), Opts).Ok);

  Response Tree = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(Tree.Ok);
  URI NumUri = findTaggedUri(Tree.Payload, "Num");
  ASSERT_NE(NumUri, NullURI);

  Response H = blame::historyResponse(Store, Prov, 1, NumUri);
  ASSERT_TRUE(H.Ok) << H.Error;
  EXPECT_NE(H.Payload.find("v1 by grace (update)"), std::string::npos)
      << H.Payload;
  EXPECT_NE(H.Payload.find("v0 by ada (open)"), std::string::npos)
      << H.Payload;
  EXPECT_EQ(H.Payload.find("evicted"), std::string::npos) << H.Payload;

  Response Missing = blame::historyResponse(Store, Prov, 1, NumUri + 100000);
  EXPECT_FALSE(Missing.Ok);
  EXPECT_EQ(Missing.Code, ErrCode::NoSuchNode);
  Response NoDoc = blame::historyResponse(Store, Prov, 9, NumUri);
  EXPECT_FALSE(NoDoc.Ok);
  EXPECT_EQ(NoDoc.Code, ErrCode::NoSuchDocument);
}

//===----------------------------------------------------------------------===//
// Canonical serialization, budget accounting, stats
//===----------------------------------------------------------------------===//

TEST(BlameSnapshot, RoundTripAndMalformedRejection) {
  SignatureTable Sig = json::makeJsonSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);
  runSeededWorkload(Store, Sig, 120, 0x5eed);

  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    std::string Blob = Prov.snapshotDoc(Doc);
    uint64_t Version = 0;
    if (!Prov.docVersion(Doc, &Version))
      continue;
    blame::ProvenanceIndex Fresh;
    ASSERT_TRUE(Fresh.installSnapshot(Doc, Blob)) << "doc " << Doc;
    EXPECT_EQ(Fresh.snapshotDoc(Doc), Blob) << "doc " << Doc;
    uint64_t FreshVersion = 0;
    ASSERT_TRUE(Fresh.docVersion(Doc, &FreshVersion));
    EXPECT_EQ(FreshVersion, Version);
  }

  blame::ProvenanceIndex Fresh;
  EXPECT_FALSE(Fresh.installSnapshot(1, "garbage"));
  EXPECT_FALSE(Fresh.installSnapshot(1, std::string("\xff\xff\xff\xff", 4)));
  uint64_t V = 0;
  EXPECT_FALSE(Fresh.docVersion(1, &V));
}

TEST(BlameBudget, IndexBytesChargedAndReleased) {
  SignatureTable Sig = makeExpSignature();
  MemoryBudget Budget(0); // unlimited, but an honest gauge
  DocumentStore Store(Sig);
  blame::ProvenanceIndex::Config C;
  C.MemBudget = &Budget;
  blame::ProvenanceIndex Prov(C);
  Prov.attach(Store);

  ASSERT_TRUE(Store.open(1, expBuilder("(Add (Num 1) (Num 2))"), "ada").Ok);
  EXPECT_GT(Budget.used(), 0u);
  blame::ProvenanceIndex::Stats S = Prov.stats();
  EXPECT_EQ(Budget.used(), S.Bytes);
  EXPECT_EQ(S.Docs, 1u);
  EXPECT_EQ(S.Nodes, 3u);

  ASSERT_TRUE(Store.erase(1));
  EXPECT_EQ(Budget.used(), 0u);
  EXPECT_EQ(Prov.stats().Docs, 0u);
}

TEST(BlameStats, QueriesCountedAndJsonFragmentShaped) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);
  ASSERT_TRUE(Store.open(1, expBuilder("(Num 1)"), "ada").Ok);

  blame::NodeProvenance P;
  Response Tree = blame::blameResponse(Store, Prov, 1, false, NullURI);
  ASSERT_TRUE(Tree.Ok);
  URI Root = findTaggedUri(Tree.Payload, "Num");
  ASSERT_TRUE(Prov.blameNode(1, Root, P));
  EXPECT_GE(Prov.stats().Queries, 2u);

  std::string J = Prov.statsJsonFragment();
  EXPECT_EQ(J.rfind("\"blame\":{", 0), 0u) << J;
  EXPECT_NE(J.find("\"blame_queries\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"provenance_nodes\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"provenance_bytes\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"per_doc\":["), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Wire protocol: author token and the blame/history verbs
//===----------------------------------------------------------------------===//

TEST(BlameWire, AuthorTokenParsed) {
  WireCommand C = parseWireCommand("open 1 author=ada (Add (a) (b))");
  ASSERT_EQ(C.K, WireCommand::Kind::Open);
  EXPECT_EQ(C.Doc, 1u);
  EXPECT_EQ(C.Author, "ada");
  EXPECT_EQ(C.Arg, "(Add (a) (b))");

  C = parseWireCommand("submit 2 author=grace-h_77 (a)");
  ASSERT_EQ(C.K, WireCommand::Kind::Submit);
  EXPECT_EQ(C.Author, "grace-h_77");
  EXPECT_EQ(C.Arg, "(a)");

  // No token: the author stays empty and the tree text is untouched.
  C = parseWireCommand("submit 2 (author (a))");
  ASSERT_EQ(C.K, WireCommand::Kind::Submit);
  EXPECT_EQ(C.Author, "");
  EXPECT_EQ(C.Arg, "(author (a))");

  // The token must be followed by a tree.
  C = parseWireCommand("open 1 author=ada");
  EXPECT_EQ(C.K, WireCommand::Kind::Invalid);
}

TEST(BlameWire, BlameAndHistoryVerbsParsed) {
  WireCommand C = parseWireCommand("blame 3");
  ASSERT_EQ(C.K, WireCommand::Kind::Blame);
  EXPECT_EQ(C.Doc, 3u);
  EXPECT_FALSE(C.HasUri);

  C = parseWireCommand("blame 3 17");
  ASSERT_EQ(C.K, WireCommand::Kind::Blame);
  EXPECT_TRUE(C.HasUri);
  EXPECT_EQ(C.Uri, 17u);

  C = parseWireCommand("history 3 17");
  ASSERT_EQ(C.K, WireCommand::Kind::History);
  EXPECT_EQ(C.Doc, 3u);
  EXPECT_EQ(C.Uri, 17u);

  EXPECT_EQ(parseWireCommand("history 3").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("blame").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("blame 3 x").K, WireCommand::Kind::Invalid);
}

//===----------------------------------------------------------------------===//
// Durability: crash recovery rebuilds the index byte-identically
//===----------------------------------------------------------------------===//

TEST(BlameDurability, RecoveredIndexByteIdentical) {
  TempDir Dir;
  SignatureTable Sig = json::makeJsonSignature();

  std::map<uint64_t, std::string> LiveBlobs;
  std::map<uint64_t, uint64_t> LiveVersions;
  {
    DocumentStore Store(Sig);
    blame::ProvenanceIndex Prov;
    persist::Persistence::Config PC;
    PC.Dir = Dir.path();
    PC.SnapshotEvery = 8; // mix snapshot-covered state with a WAL tail
    PC.BackgroundIntervalMs = 0;
    persist::Persistence P(Sig, PC);
    P.setProvenanceSource(
        [&Prov](DocId Doc) { return Prov.snapshotDoc(Doc); });
    P.recoverAndAttach(Store, &Prov);
    Prov.attach(Store);

    runSeededWorkload(Store, Sig, 150, 0xdeadb1a3);
    // Snapshot a couple of documents explicitly so recovery exercises
    // both the snapshot-seeding and the WAL-folding paths.
    P.snapshotDocument(1);
    P.snapshotDocument(2);
    for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
      uint64_t V = 0;
      if (!Prov.docVersion(Doc, &V))
        continue;
      LiveBlobs[Doc] = Prov.snapshotDoc(Doc);
      LiveVersions[Doc] = V;
    }
    // Crash: Persistence flushes its tail on destruction; a kill -9
    // loses nothing more because completed writes survive in page cache.
  }
  ASSERT_FALSE(LiveBlobs.empty());

  DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  persist::RecoveryResult R =
      persist::Persistence::recover(Sig, Dir.path(), Store, &Prov);
  EXPECT_EQ(R.DocsRecovered, LiveBlobs.size());

  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    auto It = LiveBlobs.find(Doc);
    if (It == LiveBlobs.end()) {
      uint64_t V = 0;
      EXPECT_FALSE(Prov.docVersion(Doc, &V)) << "doc " << Doc;
      continue;
    }
    EXPECT_EQ(Prov.snapshotDoc(Doc), It->second) << "doc " << Doc;
    uint64_t V = 0;
    ASSERT_TRUE(Prov.docVersion(Doc, &V)) << "doc " << Doc;
    EXPECT_EQ(V, LiveVersions[Doc]) << "doc " << Doc;
  }

  // The recovered index serves blame without any history replay: the
  // whole-tree response renders directly against the restored trees.
  for (const auto &[Doc, Blob] : LiveBlobs) {
    Response B = blame::blameResponse(Store, Prov, Doc, false, NullURI);
    EXPECT_TRUE(B.Ok) << "doc " << Doc << ": " << B.Error;
  }
}

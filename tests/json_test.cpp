//===- tests/json_test.cpp - Unit tests for the JSON substrate -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "json/Json.h"

#include "support/Rng.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::json;

namespace {

class JsonTest : public ::testing::Test {
protected:
  JsonTest() : Sig(makeJsonSignature()), Ctx(Sig) {}

  Tree *parseOk(std::string_view Text) {
    JsonParseResult R = parseJson(Ctx, Text);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.Value;
  }

  void roundTrip(std::string_view Text) {
    Tree *First = parseOk(Text);
    if (First == nullptr)
      return;
    std::string Printed = unparseJson(Sig, First);
    JsonParseResult Again = parseJson(Ctx, Printed);
    ASSERT_TRUE(Again.ok()) << Again.Error << "\n" << Printed;
    EXPECT_TRUE(treeEqualsModuloUris(First, Again.Value))
        << Printed;
    // Pretty output reparses equally too.
    JsonParseResult Pretty = parseJson(Ctx, unparseJsonPretty(Sig, First));
    ASSERT_TRUE(Pretty.ok());
    EXPECT_TRUE(treeEqualsModuloUris(First, Pretty.Value));
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_F(JsonTest, ParsesScalars) {
  EXPECT_EQ(Sig.name(parseOk("null")->tag()), "JNull");
  EXPECT_EQ(parseOk("true")->lit(0), Literal(true));
  EXPECT_EQ(parseOk("-2.5")->lit(0), Literal(-2.5));
  EXPECT_EQ(parseOk("\"hi\\n\"")->lit(0), Literal("hi\n"));
}

TEST_F(JsonTest, ParsesUnicodeEscapes) {
  Tree *T = parseOk("\"\\u00e9\"");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->lit(0).asString(), "\xc3\xa9");
}

TEST_F(JsonTest, ParsesNestedStructures) {
  Tree *T = parseOk(R"({"users": [{"name": "ada", "age": 36},
                                  {"name": "alan", "age": 41}],
                        "active": true})");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Sig.name(T->tag()), "JObject");
  EXPECT_FALSE(Ctx.validate(T).has_value());
}

TEST_F(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson(Ctx, "{\"a\": }").ok());
  EXPECT_FALSE(parseJson(Ctx, "[1, 2").ok());
  EXPECT_FALSE(parseJson(Ctx, "nul").ok());
  EXPECT_FALSE(parseJson(Ctx, "\"open").ok());
  EXPECT_FALSE(parseJson(Ctx, "1 2").ok());
}

TEST_F(JsonTest, CompactRoundTrips) {
  Tree *T = parseOk(R"({"a": [1, 2, {"b": null}], "c": "x\"y"})");
  ASSERT_NE(T, nullptr);
  std::string Printed = unparseJson(Sig, T);
  JsonParseResult Again = parseJson(Ctx, Printed);
  ASSERT_TRUE(Again.ok()) << Again.Error << "\n" << Printed;
  EXPECT_TRUE(treeEqualsModuloUris(T, Again.Value)) << Printed;
}

TEST_F(JsonTest, PrettyRoundTrips) {
  Tree *T = parseOk(R"([{"k": [true, false]}, 3.5, "s"])");
  ASSERT_NE(T, nullptr);
  std::string Pretty = unparseJsonPretty(Sig, T);
  EXPECT_NE(Pretty.find('\n'), std::string::npos);
  JsonParseResult Again = parseJson(Ctx, Pretty);
  ASSERT_TRUE(Again.ok()) << Again.Error;
  EXPECT_TRUE(treeEqualsModuloUris(T, Again.Value));
}

TEST_F(JsonTest, DiffingJsonDocuments) {
  // The database use case: a record changes, an entry moves.
  Tree *Before = parseOk(R"({"config": {"rate": 10, "mode": "fast"},
                             "jobs": [{"id": 1}, {"id": 2}]})");
  Tree *After = parseOk(R"({"config": {"rate": 50, "mode": "fast"},
                            "jobs": [{"id": 2}, {"id": 1}]})");
  ASSERT_NE(Before, nullptr);
  ASSERT_NE(After, nullptr);

  MTree M = MTree::fromTree(Sig, Before);
  TrueDiff Differ(Ctx);
  DiffResult R = Differ.compareTo(Before, After);

  LinearTypeChecker Checker(Sig);
  EXPECT_TRUE(Checker.checkWellTyped(R.Script).Ok);
  ASSERT_TRUE(M.patchChecked(R.Script).Ok);
  EXPECT_TRUE(M.equalsTree(After));
  // Concise: one update (rate) plus the moves/rebuilds for the swapped
  // array entries; far below the document size.
  EXPECT_LE(R.Script.coalescedSize(), 12u) << R.Script.toString(Sig);
}

class JsonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

/// Random JSON documents: parse/print round trip and diff invariants.
TEST_P(JsonPropertyTest, RandomDocumentInvariants) {
  SignatureTable Sig = makeJsonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 409 + 3);

  std::function<Tree *(int)> Gen = [&](int Depth) -> Tree * {
    if (Depth <= 0 || R.chance(40)) {
      switch (R.below(4)) {
      case 0:
        return Ctx.make("JNull", {}, {});
      case 1:
        return Ctx.make("JBool", {}, {Literal(R.chance(50))});
      case 2:
        return Ctx.make("JNumber", {},
                        {Literal(static_cast<double>(R.range(-50, 50)))});
      default:
        return Ctx.make(
            "JString", {},
            {Literal(std::string("s") + std::to_string(R.below(20)))});
      }
    }
    if (R.chance(50)) {
      Tree *List = Ctx.make("ElemNil", {}, {});
      for (int I = static_cast<int>(R.below(4)); I-- > 0;)
        List = Ctx.make("ElemCons", {Gen(Depth - 1), List}, {});
      return Ctx.make("JArray", {List}, {});
    }
    Tree *List = Ctx.make("MemberNil", {}, {});
    for (int I = static_cast<int>(R.below(4)); I-- > 0;)
      List = Ctx.make(
          "MemberCons",
          {Ctx.make("Member", {Gen(Depth - 1)},
                    {Literal(std::string("k") + std::to_string(R.below(8)))}),
           List},
          {});
    return Ctx.make("JObject", {List}, {});
  };

  Tree *A = Gen(4);
  Tree *B = Gen(4);

  // Round trip.
  JsonParseResult P = parseJson(Ctx, unparseJson(Sig, A));
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_TRUE(treeEqualsModuloUris(A, P.Value));

  // Diff invariants.
  MTree M = MTree::fromTree(Sig, A);
  TrueDiff Differ(Ctx);
  DiffResult Result = Differ.compareTo(A, B);
  LinearTypeChecker Checker(Sig);
  ASSERT_TRUE(Checker.checkWellTyped(Result.Script).Ok);
  ASSERT_TRUE(M.patchChecked(Result.Script).Ok);
  EXPECT_TRUE(M.equalsTree(B));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

} // namespace

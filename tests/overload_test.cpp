//===- tests/overload_test.cpp - Overload protection tests -----------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the service's overload-protection stack:
///
///  - FairQueue: deficit-round-robin scheduling, per-key capacity, and
///    newest-first shedding at the queue level.
///  - DiffService: a hot tenant cannot starve a cold one; sustained
///    above-target queue sojourn sheds the hot document's newest
///    requests with per-document retry_after_ms hints.
///  - Resource admission: parse-time depth/node caps and the
///    process-wide memory budget reject hostile input with typed
///    errors, fuzzed with seeded random payloads (TRUEDIFF_TEST_SEED
///    replays a nightly failure).
///  - The rejection invariant: every rejected request -- whatever the
///    rejection class -- leaves the DocumentStore byte-identical, and
///    every accepted submit's script passes the LinearTypeChecker.
///  - Wire hardening: configurable frame caps reject oversized lines
///    with a typed error, and retry hints are suppressed on verbs a
///    client should not retry.
///
//===----------------------------------------------------------------------===//

#include "service/DiffService.h"
#include "service/DocumentStore.h"
#include "service/FairQueue.h"
#include "service/Wire.h"

#include "json/Json.h"
#include "python/Python.h"
#include "support/Rng.h"
#include "tree/Limits.h"
#include "tree/SExpr.h"
#include "truechange/MTree.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace truediff;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

/// A left-spine Add nest of depth \p D around a leaf: depth D+1,
/// 2*D + 1 nodes.
std::string deepExpr(unsigned D) {
  std::string S = "(a)";
  for (unsigned I = 0; I != D; ++I)
    S = "(Add " + S + " (b))";
  return S;
}

/// A balanced Add tree over \p Leaves leaves: 2*Leaves - 1 nodes,
/// logarithmic depth (wide-but-shallow, the node-cap probe).
std::string balancedExpr(unsigned Leaves) {
  if (Leaves <= 1)
    return "(a)";
  unsigned L = Leaves / 2;
  return "(Add " + balancedExpr(L) + " " + balancedExpr(Leaves - L) + ")";
}

/// A builder that parks the worker until \p Gate is released, then
/// produces a single leaf.
TreeBuilder gatedBuilder(std::shared_future<void> Gate, const char *Tag) {
  return [Gate, Tag](TreeContext &Ctx) -> BuildResult {
    Gate.wait();
    return BuildResult{Ctx.make(Tag, {}, {}), ""};
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// FairQueue
//===----------------------------------------------------------------------===//

TEST(FairQueueTest, DrrInterleavesHotAndColdKeys) {
  FairQueue<int> Q(/*Capacity=*/64, /*PerKeyCapacity=*/0, /*Quantum=*/100);
  // A hot key floods first; a cold key arrives last. DRR must serve the
  // cold key's item on its first scheduling turn, not after the flood.
  for (int I = 0; I != 20; ++I)
    ASSERT_EQ(Q.tryPush(1, 100 + I, 100), PushResult::Ok);
  ASSERT_EQ(Q.tryPush(2, 900, 100), PushResult::Ok);
  EXPECT_EQ(Q.activeKeys(), 2u);

  std::vector<int> Order;
  for (int I = 0; I != 4; ++I)
    Order.push_back(*Q.pop());
  // The cold item appears within the first two dequeues (one turn of the
  // two-key ring), and the hot key stays FIFO.
  EXPECT_TRUE(Order[0] == 900 || Order[1] == 900) << Order[0] << "," << Order[1];
  std::vector<int> Hot;
  for (int V : Order)
    if (V != 900)
      Hot.push_back(V);
  for (size_t I = 1; I < Hot.size(); ++I)
    EXPECT_LT(Hot[I - 1], Hot[I]);
}

TEST(FairQueueTest, ExpensiveKeysGetProportionallyFewerSlots) {
  FairQueue<char> Q(64, 0, /*Quantum=*/100);
  // Key 'a' costs two quanta per item, key 'b' one: in any window 'b'
  // should be served about twice as often.
  for (int I = 0; I != 4; ++I)
    ASSERT_EQ(Q.tryPush(1, 'a', 200), PushResult::Ok);
  for (int I = 0; I != 8; ++I)
    ASSERT_EQ(Q.tryPush(2, 'b', 100), PushResult::Ok);
  std::string First6;
  for (int I = 0; I != 6; ++I)
    First6 += *Q.pop();
  EXPECT_EQ(std::count(First6.begin(), First6.end(), 'a'), 2)
      << First6;
  EXPECT_EQ(std::count(First6.begin(), First6.end(), 'b'), 4)
      << First6;
  // The remainder drains completely.
  for (int I = 0; I != 6; ++I)
    EXPECT_TRUE(Q.pop().has_value());
  EXPECT_EQ(Q.depth(), 0u);
}

TEST(FairQueueTest, PerKeyCapacityBoundsOneTenantBelowTheSharedWall) {
  FairQueue<int> Q(/*Capacity=*/8, /*PerKeyCapacity=*/2, 100);
  ASSERT_EQ(Q.tryPush(1, 0, 100), PushResult::Ok);
  ASSERT_EQ(Q.tryPush(1, 1, 100), PushResult::Ok);
  EXPECT_EQ(Q.tryPush(1, 2, 100), PushResult::KeyFull);
  // Another key still enqueues: the wall was per-tenant, not shared.
  EXPECT_EQ(Q.tryPush(2, 3, 100), PushResult::Ok);
  EXPECT_EQ(Q.depth(), 3u);
  EXPECT_EQ(Q.depthOf(1), 2u);
  // The shared capacity still applies above the per-key walls.
  for (uint64_t K = 3; K != 8; ++K)
    ASSERT_EQ(Q.tryPush(K, 9, 100), PushResult::Ok);
  EXPECT_EQ(Q.tryPush(9, 9, 100), PushResult::Full);
}

TEST(FairQueueTest, ShedNewestRemovesTheYoungestOfOneKeyOnly) {
  FairQueue<int> Q(16, 0, 100);
  for (int I = 0; I != 3; ++I)
    ASSERT_EQ(Q.tryPush(1, int(I), 100), PushResult::Ok);
  ASSERT_EQ(Q.tryPush(2, 42, 100), PushResult::Ok);

  EXPECT_EQ(*Q.shedNewest(1), 2); // youngest of key 1, not of the queue
  EXPECT_EQ(*Q.shedNewest(1), 1);
  EXPECT_EQ(*Q.shedNewest(1), 0);
  EXPECT_EQ(Q.shedNewest(1), std::nullopt); // key drained
  EXPECT_EQ(Q.shedNewest(7), std::nullopt); // never-seen key
  EXPECT_EQ(Q.depthOf(1), 0u);
  EXPECT_EQ(Q.activeKeys(), 1u);

  // The ring survived the surgical removals: key 2 still pops.
  EXPECT_EQ(*Q.pop(), 42);
  EXPECT_EQ(Q.depth(), 0u);
}

TEST(FairQueueTest, CloseDrainsRemainderThenSignalsEndOfQueue) {
  FairQueue<int> Q(8, 0, 100);
  ASSERT_EQ(Q.tryPush(1, 7, 100), PushResult::Ok);
  Q.close();
  EXPECT_EQ(Q.tryPush(1, 8, 100), PushResult::Closed);
  EXPECT_EQ(*Q.pop(), 7);
  EXPECT_EQ(Q.pop(), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Fair scheduling at the service level
//===----------------------------------------------------------------------===//

TEST(OverloadTest, ColdTenantIsNotStarvedByAHotFlood) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 64;
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);
  ASSERT_TRUE(Service.open(2, makeSExprBuilder("(a)")).Ok);

  // Park the single worker, flood document 1 with 20 submits, then let
  // document 2's single request arrive LAST.
  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  std::future<Response> Parked =
      Service.submitAsync(1, gatedBuilder(Gate, "b"));
  while (Service.queueDepth() != 0)
    std::this_thread::yield();

  std::mutex OrderMu;
  std::vector<int> Order; // which tenant each executed builder belonged to
  auto Tracked = [&](int Tenant, const char *Tag) {
    return [&, Tenant, Tag](TreeContext &Ctx) -> BuildResult {
      {
        std::lock_guard<std::mutex> Lock(OrderMu);
        Order.push_back(Tenant);
      }
      return BuildResult{Ctx.make(Tag, {}, {}), ""};
    };
  };
  std::vector<std::future<Response>> Hot;
  for (int I = 0; I != 20; ++I)
    Hot.push_back(Service.submitAsync(1, Tracked(1, "c")));
  std::future<Response> Cold = Service.submitAsync(2, Tracked(2, "d"));

  GateP.set_value();
  EXPECT_TRUE(Parked.get().Ok);
  EXPECT_TRUE(Cold.get().Ok);
  for (std::future<Response> &F : Hot)
    EXPECT_TRUE(F.get().Ok);

  // Under FIFO the cold tenant would run 21st; under DRR it runs on the
  // first scheduling turn after the worker unparks.
  std::lock_guard<std::mutex> Lock(OrderMu);
  ASSERT_EQ(Order.size(), 21u);
  size_t ColdPos = 0;
  while (Order[ColdPos] != 2)
    ++ColdPos;
  EXPECT_LE(ColdPos, 2u) << "cold tenant served " << ColdPos
                         << " requests late";
}

TEST(OverloadTest, SustainedSojournShedsNewestWithPerDocHints) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 64;
  Cfg.ShedTargetMs = 5;
  Cfg.ShedIntervalMs = 0; // shed on the second above-target dequeue
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);

  // Park the worker long enough that (a) every queued request's sojourn
  // exceeds the target and (b) the parked request's service time seeds a
  // large EWMA, so the shed loop drains the whole backlog.
  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  std::future<Response> Parked =
      Service.submitAsync(1, gatedBuilder(Gate, "b"));
  while (Service.queueDepth() != 0)
    std::this_thread::yield();

  std::vector<std::future<Response>> Queued;
  for (int I = 0; I != 10; ++I)
    Queued.push_back(Service.submitAsync(1, makeSExprBuilder("(c)")));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  GateP.set_value();

  EXPECT_TRUE(Parked.get().Ok);
  size_t ServedCount = 0, ShedCount = 0;
  bool SeenShedAfterServed = false;
  bool SeenServedAfterShed = false;
  for (std::future<Response> &F : Queued) {
    Response R = F.get();
    if (R.Ok) {
      ++ServedCount;
      if (ShedCount != 0)
        SeenServedAfterShed = true;
    } else {
      ASSERT_EQ(R.Code, ErrCode::Shed) << R.Error;
      EXPECT_NE(R.Error.find("shed"), std::string::npos) << R.Error;
      EXPECT_GE(R.RetryAfterMs, 1u);
      ++ShedCount;
      SeenShedAfterServed = true;
    }
  }
  // Shedding is newest-first, so the served requests are exactly a
  // prefix of the queued FIFO order.
  EXPECT_FALSE(SeenServedAfterShed);
  EXPECT_TRUE(SeenShedAfterServed);
  EXPECT_GE(ShedCount, 1u);
  EXPECT_EQ(Service.metrics().Shed.load(), ShedCount);
  // Only the parked submit and the served prefix advanced the document.
  EXPECT_EQ(Store.snapshot(1).Version, 1u + ServedCount);
  // The shed responses render with the hint on the wire.
  Response Sample;
  Sample.Code = ErrCode::Shed;
  Sample.Error = "shed";
  Sample.RetryAfterMs = 7;
  EXPECT_NE(formatWireResponse(Sample, WireCommand::Kind::Submit)
                .find(" retry_after_ms=7"),
            std::string::npos);
}

TEST(OverloadTest, ArrivalSheddingRejectsBeforeQueueingAndSparesOtherDocs) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 64;
  Cfg.ShedTargetMs = 5;
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);
  ASSERT_TRUE(Service.open(2, makeSExprBuilder("(a)")).Ok);

  // Seed document 1's service-time EWMA well above the target: a gated
  // submit whose service time is ~40ms.
  {
    std::promise<void> GateP;
    std::shared_future<void> Gate(GateP.get_future());
    std::future<Response> Slow = Service.submitAsync(1, gatedBuilder(Gate, "b"));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    GateP.set_value();
    ASSERT_TRUE(Slow.get().Ok);
  }

  // Park the worker on document 2, queue ONE request for document 1
  // (depth 1 x ~40ms EWMA >> 5ms target), then offer a second: the
  // second must be rejected at arrival, without ever taking a queue
  // slot, while document 2 -- no EWMA yet -- is still admitted.
  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  std::future<Response> Parked = Service.submitAsync(2, gatedBuilder(Gate, "b"));
  while (Service.queueDepth() != 0)
    std::this_thread::yield();

  std::future<Response> Backlog = Service.submitAsync(1, makeSExprBuilder("(c)"));
  std::future<Response> ShedNow = Service.submitAsync(1, makeSExprBuilder("(d)"));
  Response R = ShedNow.get(); // resolves while the worker is still parked
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, ErrCode::Shed) << R.Error;
  EXPECT_NE(R.Error.find("shed at arrival"), std::string::npos) << R.Error;
  EXPECT_GE(R.RetryAfterMs, 1u);
  EXPECT_EQ(Service.metrics().ArrivalShed.load(), 1u);
  EXPECT_EQ(Service.metrics().Shed.load(), 1u);

  // The cold document is not collateral damage.
  std::future<Response> Cold = Service.submitAsync(2, makeSExprBuilder("(d)"));
  GateP.set_value();
  Response ParkedR = Parked.get();
  EXPECT_TRUE(ParkedR.Ok) << ParkedR.Error;
  Response BacklogR = Backlog.get();
  EXPECT_TRUE(BacklogR.Ok) << BacklogR.Error;
  Response ColdR = Cold.get();
  EXPECT_TRUE(ColdR.Ok) << ColdR.Error;
  // Exactly one document-1 request was refused; the admitted ones landed
  // (open is version 0, so each doc took two successful submits).
  EXPECT_EQ(Store.snapshot(1).Version, 2u);
  EXPECT_EQ(Store.snapshot(2).Version, 2u);
}

//===----------------------------------------------------------------------===//
// Parse-time admission caps (hostile-input fuzz)
//===----------------------------------------------------------------------===//

TEST(AdmissionTest, SeededFuzzOverDepthAndNodeCaps) {
  SignatureTable Sig = makeExpSignature();
  const uint64_t BaseSeed = tests::testSeed(20260807);
  const uint64_t Iters = tests::testIters("TRUEDIFF_CHAOS_ITERS", 60);
  SEED_TRACE(BaseSeed);
  Rng R(BaseSeed * 0x9e3779b97f4a7c15ull + 1);

  for (uint64_t Iter = 0; Iter != Iters; ++Iter) {
    SCOPED_TRACE("iteration " + std::to_string(Iter));

    // Depth probe: nesting D+1 against MaxDepth=16.
    unsigned D = 1 + static_cast<unsigned>(R.below(40));
    {
      TreeContext Ctx(Sig);
      ParseLimits Limits;
      Limits.MaxDepth = 16;
      ParseResult P = parseSExpr(Ctx, deepExpr(D), Limits);
      if (D + 1 <= 16) {
        EXPECT_TRUE(P.ok()) << P.Error;
        EXPECT_EQ(P.Fail, ParseFail::None);
      } else {
        EXPECT_FALSE(P.ok());
        EXPECT_EQ(P.Fail, ParseFail::TooDeep) << P.Error;
        // The guard fires on the way down: the arena never grew past
        // what fits inside the cap.
        EXPECT_LE(Ctx.numNodes(), 2u * 16u + 1u);
      }
    }

    // Width probe: 2L-1 nodes against MaxNodes=63 (depth stays small).
    unsigned L = 1 + static_cast<unsigned>(R.below(64));
    {
      TreeContext Ctx(Sig);
      ParseLimits Limits;
      Limits.MaxNodes = 63;
      ParseResult P = parseSExpr(Ctx, balancedExpr(L), Limits);
      if (2 * L - 1 <= 63) {
        EXPECT_TRUE(P.ok()) << P.Error;
      } else {
        EXPECT_FALSE(P.ok());
        EXPECT_EQ(P.Fail, ParseFail::TooLarge) << P.Error;
        EXPECT_LE(Ctx.numNodes(), 64u);
      }
    }
  }
}

TEST(AdmissionTest, PythonAndJsonParsersHonorTheSameCaps) {
  // JSON: a 40-deep array nest against MaxDepth=8.
  {
    SignatureTable Sig = json::makeJsonSignature();
    TreeContext Ctx(Sig);
    std::string Deep(40, '[');
    Deep += "1";
    Deep += std::string(40, ']');
    ParseLimits Limits;
    Limits.MaxDepth = 8;
    json::JsonParseResult P = json::parseJson(Ctx, Deep, Limits);
    EXPECT_FALSE(P.ok());
    EXPECT_EQ(P.Fail, ParseFail::TooDeep) << P.Error;
  }
  // Python: a long module against a small node cap.
  {
    SignatureTable Sig = python::makePythonSignature();
    TreeContext Ctx(Sig);
    std::string Src;
    for (int I = 0; I != 50; ++I)
      Src += "x" + std::to_string(I) + " = " + std::to_string(I) + "\n";
    ParseLimits Limits;
    Limits.MaxNodes = 10;
    python::PyParseResult P = python::parsePython(Ctx, Src, Limits);
    EXPECT_FALSE(P.ok());
    EXPECT_EQ(P.Fail, ParseFail::TooLarge) << P.Error;
  }
  // Both parse fine without caps.
  {
    SignatureTable Sig = json::makeJsonSignature();
    TreeContext Ctx(Sig);
    EXPECT_TRUE(json::parseJson(Ctx, "[[[1]]]").ok());
  }
}

//===----------------------------------------------------------------------===//
// Memory budget
//===----------------------------------------------------------------------===//

TEST(AdmissionTest, BudgetStopsAParseMidFlightAndContextDeathReleasesIt) {
  SignatureTable Sig = makeExpSignature();
  MemoryBudget Budget(1); // any allocation exhausts it
  {
    TreeContext Ctx(Sig);
    Ctx.attachBudget(&Budget);
    ParseResult P = parseSExpr(Ctx, "(Add (a) (b))");
    EXPECT_FALSE(P.ok());
    EXPECT_EQ(P.Fail, ParseFail::OverBudget) << P.Error;
    // The overshoot is bounded by one node: the check runs before every
    // allocation.
    EXPECT_LE(Ctx.numNodes(), 1u);
    EXPECT_GT(Budget.used(), 0u);
  }
  // Tearing the context down returns every charged byte.
  EXPECT_EQ(Budget.used(), 0u);
}

TEST(OverloadTest, ExhaustedBudgetRejectsUpFrontAndRecoversOnErase) {
  SignatureTable Sig = makeExpSignature();
  MemoryBudget Budget(1);
  DocumentStore::Config StoreCfg;
  StoreCfg.MemBudget = &Budget;
  DocumentStore Store(Sig, StoreCfg);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.MemBudget = &Budget;
  DiffService Service(Store, Cfg);

  // The first single-node open fits (the budget check precedes each
  // allocation, and nothing is charged yet) and exhausts the budget.
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);
  EXPECT_TRUE(Budget.over());

  // Now every open/submit is refused at enqueue, with the typed error
  // and a retry hint, without reaching a parser.
  Response R = Service.open(2, makeSExprBuilder("(a)"));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, ErrCode::MemoryBudget) << R.Error;
  EXPECT_NE(R.Error.find("memory budget"), std::string::npos) << R.Error;
  EXPECT_GE(R.RetryAfterMs, 1u);
  EXPECT_GE(Service.metrics().BudgetRejected.load(), 1u);
  EXPECT_FALSE(Store.contains(2));

  // Reads still pass while the budget is exhausted.
  EXPECT_TRUE(Service.getVersion(1).Ok);

  // Erasing the document releases its arena's bytes; admission reopens.
  ASSERT_TRUE(Store.erase(1));
  EXPECT_EQ(Budget.used(), 0u);
  EXPECT_TRUE(Service.open(2, makeSExprBuilder("(b)")).Ok);
}

//===----------------------------------------------------------------------===//
// The rejection invariant: rejected requests leave the store untouched
//===----------------------------------------------------------------------===//

TEST(OverloadTest, EveryRejectionClassLeavesTheStoreByteIdentical) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  DiffService Service(Store, Cfg);

  // Every accepted script must pass the LinearTypeChecker -- collected
  // from the listener so nothing accepted escapes the check.
  LinearTypeChecker Checker(Sig);
  std::mutex ScriptMu;
  Store.addScriptListener([&](DocId, uint64_t, DocumentStore::StoreOp Op,
                              const EditScript &S,
                              const DocumentStore::ScriptInfo &) {
    std::lock_guard<std::mutex> Lock(ScriptMu);
    TypeCheckResult TC = Op == DocumentStore::StoreOp::Open
                             ? Checker.checkInitializing(S)
                             : Checker.checkWellTyped(S);
    EXPECT_TRUE(TC.Ok) << TC.Error;
  });

  ParseLimits Limits;
  Limits.MaxDepth = 16;
  Limits.MaxNodes = 63;
  ASSERT_TRUE(
      Service.open(1, makeSExprBuilder("(Sub (Add (a) (b)) (b))", Limits)).Ok);

  const uint64_t BaseSeed = tests::testSeed(20260808);
  const uint64_t Iters = tests::testIters("TRUEDIFF_CHAOS_ITERS", 40);
  SEED_TRACE(BaseSeed);
  Rng R(BaseSeed * 0x9e3779b97f4a7c15ull + 7);

  DocumentSnapshot Base = Store.snapshot(1);
  ASSERT_TRUE(Base.Ok);
  for (uint64_t Iter = 0; Iter != Iters; ++Iter) {
    SCOPED_TRACE("iteration " + std::to_string(Iter));
    Response Rej;
    ErrCode Want = ErrCode::None;
    switch (R.below(6)) {
    case 0: // hostile depth
      Rej = Service.submit(1, makeSExprBuilder(deepExpr(30), Limits));
      Want = ErrCode::TreeTooDeep;
      break;
    case 1: // hostile width
      Rej = Service.submit(1, makeSExprBuilder(balancedExpr(64), Limits));
      Want = ErrCode::TreeTooLarge;
      break;
    case 2: // syntax garbage
      Rej = Service.submit(1, makeSExprBuilder("(Add (a", Limits));
      Want = ErrCode::BuildFailed;
      break;
    case 3: // unknown document
      Rej = Service.submit(99, makeSExprBuilder("(a)", Limits));
      Want = ErrCode::NoSuchDocument;
      break;
    case 4: // double open
      Rej = Service.open(1, makeSExprBuilder("(a)", Limits));
      Want = ErrCode::DocumentExists;
      break;
    default: // rollback of a missing document
      Rej = Service.rollback(99);
      Want = ErrCode::NoSuchDocument;
      break;
    }
    ASSERT_FALSE(Rej.Ok);
    EXPECT_EQ(Rej.Code, Want) << Rej.Error;

    DocumentSnapshot Now = Store.snapshot(1);
    ASSERT_TRUE(Now.Ok);
    EXPECT_EQ(Now.Version, Base.Version);
    EXPECT_EQ(Now.Text, Base.Text);
    EXPECT_EQ(Now.UriText, Base.UriText);
    EXPECT_EQ(Store.checkDigests(1), std::nullopt);
    EXPECT_EQ(Store.stats().NumDocuments, 1u);

    // Interleave an accepted submit now and then: the store moves only
    // through type-checked scripts, and the new state becomes the base
    // the next rejections must preserve.
    if (Iter % 7 == 6) {
      unsigned L = 1 + static_cast<unsigned>(R.below(16));
      Response Ok = Service.submit(1, makeSExprBuilder(balancedExpr(L), Limits));
      ASSERT_TRUE(Ok.Ok) << Ok.Error;
      Base = Store.snapshot(1);
      ASSERT_TRUE(Base.Ok);
    }
  }
  EXPECT_GE(Service.metrics().AdmissionRejected.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Wire hardening
//===----------------------------------------------------------------------===//

TEST(WireHardeningTest, FrameCapRejectsOversizedLinesWithTypedError) {
  std::string Big = "submit 1 " + std::string(300, 'x');
  WireCommand Cmd = parseWireCommand(Big, /*MaxFrameBytes=*/256);
  EXPECT_EQ(Cmd.K, WireCommand::Kind::Invalid);
  EXPECT_EQ(Cmd.Code, ErrCode::FrameTooLarge);
  EXPECT_NE(Cmd.Error.find("oversized frame"), std::string::npos);
  // Under the default cap the same line is fine (well, a syntax error in
  // the payload, but it reaches the verb parser).
  WireCommand Ok = parseWireCommand("get 1", 256);
  EXPECT_EQ(Ok.K, WireCommand::Kind::Get);
  EXPECT_EQ(Ok.Code, ErrCode::None);
}

TEST(WireHardeningTest, RetryHintsAreDroppedOnNonRetryableVerbs) {
  Response R;
  R.Ok = false;
  R.Error = "request queue full (backpressure)";
  R.Code = ErrCode::Backpressure;
  R.RetryAfterMs = 12;

  // Data verbs keep the hint, and the typed error class is named on
  // the err line so clients can branch without parsing prose.
  for (WireCommand::Kind K :
       {WireCommand::Kind::Open, WireCommand::Kind::Submit,
        WireCommand::Kind::Rollback, WireCommand::Kind::Get,
        WireCommand::Kind::Save}) {
    std::string Out = formatWireResponse(R, K);
    EXPECT_NE(Out.find(" code=backpressure"), std::string::npos) << Out;
    EXPECT_NE(Out.find(" retry_after_ms=12"), std::string::npos) << Out;
  }
  // ...verbs where a retry hint is meaningless drop it.
  for (WireCommand::Kind K :
       {WireCommand::Kind::Health, WireCommand::Kind::Stats,
        WireCommand::Kind::Recover, WireCommand::Kind::Quit,
        WireCommand::Kind::Invalid}) {
    std::string Out = formatWireResponse(R, K);
    EXPECT_EQ(Out.find("retry_after_ms"), std::string::npos) << Out;
  }
  // The verb-free overload still carries it (library callers see the
  // hint; gating is the wire front end's job).
  EXPECT_NE(formatWireResponse(R).find(" retry_after_ms=12"),
            std::string::npos);
}

TEST(WireHardeningTest, StatsExposeOverloadCounters) {
  SignatureTable Sig = makeExpSignature();
  MemoryBudget Budget(32u << 20);
  DocumentStore::Config StoreCfg;
  StoreCfg.MemBudget = &Budget;
  DocumentStore Store(Sig, StoreCfg);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.MemBudget = &Budget;
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(Add (a) (b))")).Ok);

  std::string J = Service.statsJson();
  for (const char *Key :
       {"\"shed\":", "\"shed_at_arrival\":", "\"admission_rejected\":",
        "\"budget_rejected\":", "\"doc_queues\":", "\"mem_used_bytes\":",
        "\"mem_budget_bytes\":", "\"quarantined\":"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " missing in " << J;
  // The budget gauges mirror live values.
  EXPECT_NE(J.find("\"mem_budget_bytes\":" + std::to_string(32u << 20)),
            std::string::npos)
      << J;
  EXPECT_EQ(J.find("\"mem_used_bytes\":0,"), std::string::npos) << J;
}

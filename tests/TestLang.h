//===- tests/TestLang.h - Shared expression language for tests --*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small expression language used by the paper's examples (Sections
/// 1-4): Exp with Add, Sub, Mul, Num, Var, Call, and the leaf tags a, b,
/// c, d from the Section 1/2 examples.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TESTS_TESTLANG_H
#define TRUEDIFF_TESTS_TESTLANG_H

#include "tree/Signature.h"
#include "tree/Tree.h"

namespace truediff {
namespace testlang {

/// Builds the Exp signature. Kid links are named "e1", "e2" like in the
/// paper.
inline SignatureTable makeExpSignature() {
  SignatureTable Sig;
  Sig.defineTag("Num", "Exp", {}, {{"n", LitKind::Int}});
  Sig.defineTag("Var", "Exp", {}, {{"name", LitKind::String}});
  Sig.defineTag("Add", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  Sig.defineTag("Sub", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  Sig.defineTag("Mul", "Exp", {{"e1", "Exp"}, {"e2", "Exp"}}, {});
  Sig.defineTag("Call", "Exp", {{"a", "Exp"}}, {{"f", LitKind::String}});
  // Leaf expressions used by the paper's Section 1/2 examples.
  Sig.defineTag("a", "Exp", {}, {});
  Sig.defineTag("b", "Exp", {}, {});
  Sig.defineTag("c", "Exp", {}, {});
  Sig.defineTag("d", "Exp", {}, {});
  return Sig;
}

/// Shorthand builders.
inline Tree *num(TreeContext &Ctx, int64_t N) {
  return Ctx.make("Num", {}, {Literal(N)});
}
inline Tree *var(TreeContext &Ctx, const std::string &Name) {
  return Ctx.make("Var", {}, {Literal(Name)});
}
inline Tree *add(TreeContext &Ctx, Tree *L, Tree *R) {
  return Ctx.make("Add", {L, R}, {});
}
inline Tree *sub(TreeContext &Ctx, Tree *L, Tree *R) {
  return Ctx.make("Sub", {L, R}, {});
}
inline Tree *mul(TreeContext &Ctx, Tree *L, Tree *R) {
  return Ctx.make("Mul", {L, R}, {});
}
inline Tree *call(TreeContext &Ctx, const std::string &F, Tree *A) {
  return Ctx.make("Call", {A}, {Literal(F)});
}
inline Tree *leaf(TreeContext &Ctx, const char *Tag) {
  return Ctx.make(Tag, {}, {});
}

} // namespace testlang
} // namespace truediff

#endif // TRUEDIFF_TESTS_TESTLANG_H

//===- tests/incremental_test.cpp - Unit tests for the IncA driver ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/Pipeline.h"

#include "corpus/Corpus.h"
#include "truechange/MTree.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::incremental;

namespace {

//===----------------------------------------------------------------------===//
// Indices
//===----------------------------------------------------------------------===//

TEST(IndexTest, OneToOneBasics) {
  BidirectionalOneToOneIndex<int, int> Idx;
  Idx.put(1, 10);
  Idx.put(2, 20);
  EXPECT_EQ(Idx.get(1), 10);
  EXPECT_EQ(Idx.getReverse(20), 2);
  EXPECT_EQ(Idx.size(), 2u);
  Idx.eraseKey(1);
  EXPECT_FALSE(Idx.get(1).has_value());
  EXPECT_FALSE(Idx.getReverse(10).has_value());
  Idx.put(1, 10); // slot vacated, reusable
  EXPECT_EQ(Idx.get(1), 10);
}

TEST(IndexTest, ManyToOneBasics) {
  BidirectionalManyToOneIndex<int, int> Idx;
  Idx.put(1, 100);
  Idx.put(2, 100);
  EXPECT_EQ(Idx.get(1), 100);
  ASSERT_NE(Idx.getReverse(100), nullptr);
  EXPECT_EQ(Idx.getReverse(100)->size(), 2u);
  Idx.put(1, 200); // re-targeting moves between reverse sets
  EXPECT_EQ(Idx.getReverse(100)->size(), 1u);
  Idx.eraseKey(2);
  EXPECT_EQ(Idx.getReverse(100), nullptr);
}

//===----------------------------------------------------------------------===//
// Database consistency under edit scripts
//===----------------------------------------------------------------------===//

class DatabaseTest : public ::testing::TestWithParam<IndexMode> {
protected:
  DatabaseTest() : Sig(python::makePythonSignature()), Ctx(Sig) {}

  /// Checks that the database content equals the given tree.
  void expectMatchesTree(const TreeDatabase &Db, const Tree *T) {
    // Root link points at the tree.
    auto Top = Db.childOf(NullURI, Sig.rootLink());
    ASSERT_TRUE(Top.has_value());
    EXPECT_EQ(*Top, T->uri());
    size_t Visited = 0;
    std::function<void(const Tree *)> Walk = [&](const Tree *Node) {
      ++Visited;
      const NodeRow *Row = Db.node(Node->uri());
      ASSERT_NE(Row, nullptr);
      EXPECT_EQ(Row->Tag, Node->tag());
      const TagSignature &TagSig = Sig.signature(Node->tag());
      for (size_t I = 0, E = Node->numLits(); I != E; ++I) {
        bool Found = false;
        for (const LitRef &Lit : Row->Lits)
          if (Lit.Link == TagSig.Lits[I].Link)
            Found = Lit.Value == Node->lit(I);
        EXPECT_TRUE(Found) << "literal mismatch";
      }
      for (size_t I = 0, E = Node->arity(); I != E; ++I) {
        auto Kid = Db.childOf(Node->uri(), TagSig.Kids[I].Link);
        ASSERT_TRUE(Kid.has_value());
        EXPECT_EQ(*Kid, Node->kid(I)->uri());
        auto Parent = Db.parentOf(*Kid, TagSig.Kids[I].Link);
        ASSERT_TRUE(Parent.has_value());
        EXPECT_EQ(*Parent, Node->uri());
        Walk(Node->kid(I));
      }
    };
    Walk(T);
    EXPECT_EQ(Db.numNodes(), Visited + 1); // + virtual root
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_P(DatabaseTest, InitFromTreeMatches) {
  Rng R(3);
  Tree *T = corpus::generateModule(Ctx, R);
  TreeDatabase Db(Sig, GetParam());
  Db.initFromTree(T);
  expectMatchesTree(Db, T);
}

TEST_P(DatabaseTest, EditScriptsKeepDatabaseConsistent) {
  Rng R(5);
  Tree *Current = corpus::generateModule(Ctx, R);
  TreeDatabase Db(Sig, GetParam());
  Db.initFromTree(Current);

  for (int Commit = 0; Commit != 10; ++Commit) {
    Tree *Next = corpus::mutateModule(Ctx, R, Current);
    TrueDiff Diff(Ctx);
    DiffResult Result = Diff.compareTo(Current, Next);
    Db.applyScript(Result.Script);
    Current = Result.Patched;
    expectMatchesTree(Db, Current);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DatabaseTest,
                         ::testing::Values(IndexMode::OneToOne,
                                           IndexMode::ManyToOne));

//===----------------------------------------------------------------------===//
// Analyses: incremental == from-scratch
//===----------------------------------------------------------------------===//

class AnalysisTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisTest, IncrementalMatchesRecompute) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 131 + 7);

  Tree *Current = corpus::generateModule(Ctx, R);
  TreeDatabase Db(Sig, IndexMode::OneToOne);
  Db.initFromTree(Current);

  TagCensus Census;
  Census.recomputeAll(Db);
  CallGraph Calls(Sig);
  Calls.recomputeAll(Db);
  DefUseAnalysis DefUse(Sig);
  DefUse.recomputeAll(Db);

  for (int Commit = 0; Commit != 8; ++Commit) {
    Tree *Next = corpus::mutateModule(Ctx, R, Current);
    TrueDiff Diff(Ctx);
    DiffResult Result = Diff.compareTo(Current, Next);
    Db.applyScript(Result.Script);
    Current = Result.Patched;

    Census.update(Result.Script);
    Calls.update(Db, Result.Script);
    DefUse.update(Db, Result.Script);

    TagCensus FreshCensus;
    FreshCensus.recomputeAll(Db);
    ASSERT_TRUE(Census == FreshCensus) << "census diverged at commit "
                                       << Commit;
    CallGraph FreshCalls(Sig);
    FreshCalls.recomputeAll(Db);
    ASSERT_TRUE(Calls == FreshCalls) << "call graph diverged at commit "
                                     << Commit;
    DefUseAnalysis FreshDefUse(Sig);
    FreshDefUse.recomputeAll(Db);
    ASSERT_TRUE(DefUse == FreshDefUse) << "def-use diverged at commit "
                                       << Commit;
  }
}

TEST(DefUseTest, DefsAndUsesOfAFunction) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  auto R = python::parsePython(Ctx, "def f(a, b):\n"
                                    "    total = a + b\n"
                                    "    for i in range(total):\n"
                                    "        total += helper(i, c)\n"
                                    "    x, y = split(total)\n"
                                    "    return x\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  TreeDatabase Db(Sig, IndexMode::OneToOne);
  Db.initFromTree(R.Module);
  DefUseAnalysis DefUse(Sig);
  DefUse.recomputeAll(Db);

  ASSERT_EQ(DefUse.numFunctions(), 1u);
  const Tree *Func = R.Module->kid(0)->kid(0);
  const auto *Info = DefUse.infoOf(Func->uri());
  ASSERT_NE(Info, nullptr);

  // Defs: parameters a and b, total (assign + augassign), loop var i,
  // tuple targets x and y.
  EXPECT_EQ(Info->Defs.size(), 6u);
  EXPECT_EQ(Info->Defs.at("total").size(), 2u); // = and +=
  EXPECT_EQ(Info->Defs.at("i").size(), 1u);
  EXPECT_TRUE(Info->Defs.count("x"));
  EXPECT_TRUE(Info->Defs.count("y"));

  // Uses: a, b, total (augassign reads it and range(total)), i, x.
  EXPECT_TRUE(Info->Uses.count("a"));
  EXPECT_TRUE(Info->Uses.count("total"));
  EXPECT_TRUE(Info->Uses.count("i"));
  EXPECT_TRUE(Info->Uses.count("x"));
  EXPECT_FALSE(Info->Uses.count("y")); // defined, never read

  // Free variables: the builtins/globals range, helper, split, c.
  std::set<std::string> Free = Info->freeVariables();
  EXPECT_TRUE(Free.count("range"));
  EXPECT_TRUE(Free.count("helper"));
  EXPECT_TRUE(Free.count("split"));
  EXPECT_TRUE(Free.count("c"));
  EXPECT_FALSE(Free.count("total"));
}

TEST(DefUseTest, NestedFunctionsHaveSeparateScopes) {
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  auto R = python::parsePython(Ctx, "def outer(a):\n"
                                    "    def inner(b):\n"
                                    "        return b + 1\n"
                                    "    return a\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  TreeDatabase Db(Sig, IndexMode::OneToOne);
  Db.initFromTree(R.Module);
  DefUseAnalysis DefUse(Sig);
  DefUse.recomputeAll(Db);
  ASSERT_EQ(DefUse.numFunctions(), 2u);

  const Tree *Outer = R.Module->kid(0)->kid(0);
  const auto *OuterInfo = DefUse.infoOf(Outer->uri());
  ASSERT_NE(OuterInfo, nullptr);
  // Outer does not see inner's b.
  EXPECT_FALSE(OuterInfo->Defs.count("b"));
  EXPECT_FALSE(OuterInfo->Uses.count("b"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisTest,
                         ::testing::Range<uint64_t>(0, 15));

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(PipelineTest, StepsThroughHistory) {
  corpus::CorpusOptions Opts;
  Opts.NumPairs = 8;
  Opts.CommitsPerFile = 8;
  std::vector<corpus::CommitPair> Pairs = corpus::buildCommitCorpus(Opts);
  ASSERT_FALSE(Pairs.empty());

  IncrementalPipeline Pipeline(IndexMode::OneToOne);
  ASSERT_TRUE(Pipeline.init(Pairs[0].Before));
  for (const corpus::CommitPair &Pair : Pairs) {
    if (Pair.Before != python::unparsePython(
                           python::makePythonSignature(),
                           Pipeline.currentTree()))
      break; // next file's history started
    auto Stats = Pipeline.step(Pair.After);
    ASSERT_TRUE(Stats.has_value());
    EXPECT_GT(Stats->EditCount, 0u);
    EXPECT_LE(Stats->DirtyFunctions, Stats->TotalFunctions + 1);
  }
}

TEST(PipelineTest, IncrementalCheaperThanFullOnBigFiles) {
  // Not a strict perf assertion (CI noise), but the dirty set must be a
  // small fraction of all functions for a single-statement edit.
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Ctx(Sig);
  Rng R(2024);
  corpus::PyGenOptions Gen;
  Gen.NumFunctions = 40;
  Tree *Module = corpus::generateModule(Ctx, R, Gen);
  std::string Src = python::unparsePython(Sig, Module);

  IncrementalPipeline Pipeline(IndexMode::OneToOne);
  ASSERT_TRUE(Pipeline.init(Src));

  // A *local* edit (module-wide renames legitimately dirty many
  // functions): retry until the mutator applied a local operation.
  corpus::MutatorOptions Mut;
  Mut.MinOps = 1;
  Mut.MaxOps = 1;
  Tree *Next = nullptr;
  for (int Attempt = 0; Attempt != 50; ++Attempt) {
    corpus::MutationReport Report;
    Tree *Candidate = corpus::mutateModule(Ctx, R, Module, Mut, &Report);
    ASSERT_EQ(Report.Applied.size(), 1u);
    corpus::MutationKind Kind = Report.Applied[0];
    if (Kind != corpus::MutationKind::RenameIdentifier &&
        Kind != corpus::MutationKind::ReorderTopLevel) {
      Next = Candidate;
      break;
    }
  }
  ASSERT_NE(Next, nullptr);
  auto Stats = Pipeline.step(python::unparsePython(Sig, Next));
  ASSERT_TRUE(Stats.has_value());
  EXPECT_GT(Stats->TotalFunctions, 30u);
  EXPECT_LT(Stats->DirtyFunctions, 10u);
}

} // namespace

//===- tests/digest_policy_test.cpp - Digest policy seam tests -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pluggable Step-1 digest policy (support/TreeHash.h):
///   - Fast128 is deterministic, streaming-consistent, and length-armoured;
///   - DigestHash spreads attacker-shaped digests that share a prefix
///     (the bucket-flooding regression: the old functor exposed the raw
///     digest prefix as the bucket key);
///   - the central property: fast-hash and SHA-256 policies produce
///     byte-identical edit scripts and identical touched-URI sets over
///     hundreds of seeded mutation chains, cold and warm, with every
///     script passing the linear type checker;
///   - refreshDerivedParallel produces exactly the serial digests.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/TreeHash.h"
#include "support/WorkerPool.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include "TestLang.h"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

using namespace truediff;
using namespace truediff::testlang;

namespace {

//===----------------------------------------------------------------------===//
// Fast128 hasher
//===----------------------------------------------------------------------===//

TEST(Fast128Test, DeterministicAndOneShotMatchesStreaming) {
  std::vector<uint8_t> Data(1000);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 31 + 7);

  Digest OneShot = Fast128::hash(Data.data(), Data.size());
  EXPECT_EQ(OneShot, Fast128::hash(Data.data(), Data.size()));

  // Streaming in awkward chunk sizes (straddling the 64-byte block
  // boundary) must agree with the one-shot hash.
  Rng R(42);
  for (int Trial = 0; Trial != 20; ++Trial) {
    Fast128 H;
    size_t Off = 0;
    while (Off < Data.size()) {
      size_t Chunk = std::min<size_t>(1 + R.below(130), Data.size() - Off);
      H.update(Data.data() + Off, Chunk);
      Off += Chunk;
    }
    EXPECT_EQ(H.finish(), OneShot) << "trial " << Trial;
  }
}

TEST(Fast128Test, DistinctInputsAndLengthArmouring) {
  // Zero-padded tails must not collide with shorter all-zero inputs: the
  // finalizer folds in the total length.
  std::array<uint8_t, 128> Zeros{};
  std::unordered_set<std::string> Seen;
  for (size_t Len = 0; Len <= Zeros.size(); ++Len)
    EXPECT_TRUE(Seen.insert(Fast128::hash(Zeros.data(), Len).toHex()).second)
        << "collision among zero inputs at length " << Len;

  EXPECT_NE(Fast128::hash("abc", 3), Fast128::hash("abd", 3));

  // The 128-bit digest lives in bytes [0,16); the rest stays zero so kid
  // digest truncation (Tree.cpp's KidDigestBytes) loses nothing.
  Digest D = Fast128::hash("hello", 5);
  for (size_t I = 16; I != Digest::NumBytes; ++I)
    EXPECT_EQ(D.bytes()[I], 0u);
  EXPECT_NE(D.word(0) | D.word(1), 0u);
}

TEST(Fast128Test, ProcessSeedIsStable) {
  EXPECT_EQ(processDigestSeed(), processDigestSeed());
  EXPECT_EQ(digestTableSeed(), processDigestSeed());
}

//===----------------------------------------------------------------------===//
// DigestHash bucket flooding
//===----------------------------------------------------------------------===//

TEST(DigestHashTest, SpreadsDigestsSharingAPrefix) {
  // Regression: DigestHash used to return the raw 8-byte digest prefix,
  // so digests crafted to share a prefix all landed in one bucket. With
  // the seeded finisher, 4096 digests with an identical word(0) must
  // produce (essentially) 4096 distinct table hashes.
  DigestHash H;
  std::unordered_set<size_t> Hashes;
  for (uint64_t I = 0; I != 4096; ++I) {
    std::array<uint8_t, Digest::NumBytes> B{};
    // Same first word for all; the counter only in the second word.
    std::memset(B.data(), 0xAB, 8);
    std::memcpy(B.data() + 8, &I, sizeof(I));
    Hashes.insert(H(Digest(B)));
  }
  EXPECT_GE(Hashes.size(), 4090u);
}

//===----------------------------------------------------------------------===//
// Cross-policy property: identical scripts, cold and warm
//===----------------------------------------------------------------------===//

Tree *randomExp(TreeContext &Ctx, Rng &R, int MaxDepth) {
  static const char *Vars[] = {"x", "y", "z", "acc", "tmp"};
  static const char *Funcs[] = {"f", "g", "len", "sqrt"};
  if (MaxDepth <= 1 || R.chance(25)) {
    switch (R.below(3)) {
    case 0:
      return num(Ctx, R.range(0, 9));
    case 1:
      return var(Ctx, Vars[R.below(5)]);
    default:
      return leaf(Ctx, (const char *[]){"a", "b", "c", "d"}[R.below(4)]);
    }
  }
  switch (R.below(4)) {
  case 0:
    return add(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  case 1:
    return sub(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  case 2:
    return mul(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  default:
    return call(Ctx, Funcs[R.below(4)], randomExp(Ctx, R, MaxDepth - 1));
  }
}

Tree *mutateExp(TreeContext &Ctx, Rng &R, const Tree *T, unsigned Percent) {
  if (R.chance(Percent))
    return randomExp(Ctx, R, 3);
  std::vector<Tree *> Kids;
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Kids.push_back(mutateExp(Ctx, R, T->kid(I), Percent));
  if (Kids.size() == 2 && R.chance(Percent))
    std::swap(Kids[0], Kids[1]);
  std::vector<Literal> Lits = T->lits();
  if (!Lits.empty() && R.chance(Percent) && Lits[0].kind() == LitKind::Int)
    Lits[0] = Literal(R.range(0, 9));
  return Ctx.make(T->tag(), std::move(Kids), std::move(Lits));
}

TEST(DigestPolicyProperty, ScriptsIdenticalAcrossPoliciesColdAndWarm) {
  // The digest policy selects how subtree equivalence is *computed*, never
  // what it *is*: over 500 seeded mutation chains, replayed under every
  // (policy x rehash-mode) combination in a fresh context with an
  // identical allocation sequence, the serialized scripts and touched-URI
  // sets must agree byte for byte, and every script must type-check.
  SignatureTable Sig = makeExpSignature();
  LinearTypeChecker Checker(Sig);
  constexpr int NumChains = 500;
  constexpr int Rounds = 3;
  const std::array<std::pair<DigestPolicy, bool>, 4> Combos = {{
      {DigestPolicy::Sha256, /*IncrementalRehash=*/false}, // cold
      {DigestPolicy::Sha256, /*IncrementalRehash=*/true},  // warm
      {DigestPolicy::Fast128, /*IncrementalRehash=*/false},
      {DigestPolicy::Fast128, /*IncrementalRehash=*/true},
  }};

  for (uint64_t Seed = 0; Seed != NumChains; ++Seed) {
    std::array<std::vector<std::string>, 4> Scripts;
    std::array<std::vector<std::vector<URI>>, 4> Touched;
    for (size_t C = 0; C != Combos.size(); ++C) {
      TreeContext Ctx(Sig, Combos[C].first);
      Rng R(Seed * 1000003 + 1);
      Tree *Current = randomExp(Ctx, R, 5);
      TrueDiffOptions Opts;
      Opts.IncrementalRehash = Combos[C].second;
      for (int Round = 0; Round != Rounds; ++Round) {
        Tree *Target = mutateExp(Ctx, R, Current, 15);
        TrueDiff Diff(Ctx, Opts);
        DiffResult Res = Diff.compareTo(Current, Target);
        auto TC = Checker.checkWellTyped(Res.Script);
        ASSERT_TRUE(TC.Ok) << "seed " << Seed << " combo " << C << " round "
                           << Round << ": " << TC.Error;
        Scripts[C].push_back(serializeEditScript(Sig, Res.Script));
        Touched[C].push_back(Res.Script.touchedUris());
        Current = Res.Patched;
      }
    }
    for (size_t C = 1; C != Combos.size(); ++C) {
      ASSERT_EQ(Scripts[C], Scripts[0]) << "seed " << Seed << " combo " << C;
      ASSERT_EQ(Touched[C], Touched[0]) << "seed " << Seed << " combo " << C;
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel Step-1 refresh
//===----------------------------------------------------------------------===//

/// Builds a full binary Add tree with \p Leaves Num leaves, bottom-up (no
/// recursion), so the parallel refresh actually gets chunks to fan out.
Tree *bigBalancedTree(TreeContext &Ctx, int Leaves) {
  std::vector<Tree *> Level;
  for (int I = 0; I != Leaves; ++I)
    Level.push_back(num(Ctx, I % 10));
  while (Level.size() > 1) {
    std::vector<Tree *> Next;
    for (size_t I = 0; I + 1 < Level.size(); I += 2)
      Next.push_back(add(Ctx, Level[I], Level[I + 1]));
    if (Level.size() % 2 != 0)
      Next.push_back(Level.back());
    Level = std::move(Next);
  }
  return Level.front();
}

TEST(DigestPolicyTest, ParallelRefreshMatchesSerialDigests) {
  SignatureTable Sig = makeExpSignature();
  for (DigestPolicy Policy : {DigestPolicy::Sha256, DigestPolicy::Fast128}) {
    TreeContext SerialCtx(Sig, Policy);
    TreeContext ParCtx(Sig, Policy);
    Tree *Serial = bigBalancedTree(SerialCtx, 8192);
    Tree *Par = bigBalancedTree(ParCtx, 8192);

    Serial->refreshDerived(Sig, Policy);
    WorkerPool Pool(4);
    Par->refreshDerivedParallel(Sig, Policy, Pool);

    // Node-for-node agreement, iteratively (the trees are big).
    std::vector<std::pair<Tree *, Tree *>> Stack{{Serial, Par}};
    while (!Stack.empty()) {
      auto [A, B] = Stack.back();
      Stack.pop_back();
      ASSERT_EQ(A->structureHash(), B->structureHash());
      ASSERT_EQ(A->literalHash(), B->literalHash());
      ASSERT_EQ(A->height(), B->height());
      ASSERT_EQ(A->size(), B->size());
      ASSERT_EQ(A->arity(), B->arity());
      for (size_t I = 0, E = A->arity(); I != E; ++I)
        Stack.push_back({A->kid(I), B->kid(I)});
    }
  }
}

TEST(DigestPolicyTest, PooledStep1OptionKeepsScriptsIdentical) {
  // TrueDiffOptions::Step1Pool only changes how the full refresh is
  // scheduled; diff output must be unchanged.
  SignatureTable Sig = makeExpSignature();
  std::array<std::string, 2> Out;
  WorkerPool Pool(3);
  for (int Mode = 0; Mode != 2; ++Mode) {
    TreeContext Ctx(Sig, DigestPolicy::Fast128);
    Rng R(77);
    Tree *Source = randomExp(Ctx, R, 7);
    Tree *Target = mutateExp(Ctx, R, Source, 12);
    TrueDiffOptions Opts;
    Opts.IncrementalRehash = false; // force the full-refresh path
    if (Mode == 1)
      Opts.Step1Pool = &Pool;
    TrueDiff Diff(Ctx, Opts);
    DiffResult Res = Diff.compareTo(Source, Target);
    Out[Mode] = serializeEditScript(Sig, Res.Script);
  }
  EXPECT_EQ(Out[0], Out[1]);
}

} // namespace

//===- tests/deep_tree_test.cpp - Deep-chain traversal regression ----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression test for the recursive-traversal stack overflow: a
/// pathologically deep (but admission-legal) unary chain used to crash
/// foreachTree/refreshDerived/clearDiffState/deepCopy once it exceeded
/// the thread stack. All of these are now iterative with explicit work
/// stacks; this test drives each of them over a ~300k-deep chain and is
/// meant to run under ASan, whose instrumented frames blow the stack far
/// earlier than production builds would.
///
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"
#include "tree/Tree.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

constexpr uint64_t ChainDepth = 300000;

/// Builds Call("f", Call("f", ... Num(0))) iteratively, ChainDepth Calls.
Tree *deepChain(TreeContext &Ctx) {
  Tree *T = num(Ctx, 0);
  for (uint64_t I = 0; I != ChainDepth; ++I)
    T = call(Ctx, "f", T);
  return T;
}

TEST(DeepTreeTest, TraversalsSurviveDeepChains) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Tree *T = deepChain(Ctx);

  uint64_t All = 0, Proper = 0;
  T->foreachTree([&](Tree *) { ++All; });
  T->foreachSubtree([&](Tree *) { ++Proper; });
  EXPECT_EQ(All, ChainDepth + 1);
  EXPECT_EQ(Proper, ChainDepth);

  T->refreshDerived(Sig, Ctx.digestPolicy());
  EXPECT_EQ(T->size(), ChainDepth + 1);
  EXPECT_EQ(T->height(), ChainDepth + 1);

  // Dirty-path rehash down the full chain: worst case, every node dirty.
  T->foreachTree([](Tree *N) { N->markDerivedDirty(); });
  EXPECT_EQ(T->rehashDirtyPaths(Sig, Ctx.digestPolicy()), ChainDepth + 1);
  T->foreachTree([&](Tree *N) { EXPECT_FALSE(N->derivedDirty()); });

  T->clearDiffState();

  // Parallel refresh degenerates to mostly-spine work on a chain but must
  // stay stack-safe too.
  WorkerPool Pool(2);
  Digest SerialHash = T->structureHash();
  T->refreshDerivedParallel(Sig, Ctx.digestPolicy(), Pool);
  EXPECT_EQ(T->structureHash(), SerialHash);
}

TEST(DeepTreeTest, DeepCopySurvivesDeepChains) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Tree *T = deepChain(Ctx);
  Tree *Copy = Ctx.deepCopy(T);
  EXPECT_TRUE(Copy->equalsModuloUris(*T));
  EXPECT_NE(Copy->uri(), T->uri());
  EXPECT_EQ(Copy->size(), ChainDepth + 1);
}

} // namespace

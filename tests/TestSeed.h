//===- tests/TestSeed.h - Reproducible seeds for randomized tests -*-C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed plumbing for randomized/property tests. Every test that draws
/// from an Rng takes its base seed from testSeed(Default): normally the
/// fixed default (CI per-PR runs are reproducible byte-for-byte), but
/// the TRUEDIFF_TEST_SEED environment variable overrides it, which is
/// how the nightly chaos job explores fresh schedules and how a failure
/// seen there is replayed locally:
///
///   TRUEDIFF_TEST_SEED=123456 ./build/tests/chaos_test
///
/// Use SEED_TRACE(Seed) at the top of the test so any assertion failure
/// prints the seed that produced it. SEED_TRACE also echoes the
/// per-process digest seed (TRUEDIFF_DIGEST_SEED): with the Fast128
/// digest policy, hash-table iteration order and digest bytes depend on
/// it, so replaying a failure faithfully needs both seeds exported.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_TESTS_TESTSEED_H
#define TRUEDIFF_TESTS_TESTSEED_H

#include "support/TreeHash.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <cstdlib>
#include <string>

namespace truediff {
namespace tests {

/// The base seed for a randomized test: TRUEDIFF_TEST_SEED if set and
/// parseable, else \p Default. Tests deriving several streams should mix
/// the base with distinct odd constants, not reuse it verbatim.
inline uint64_t testSeed(uint64_t Default) {
  const char *Env = std::getenv("TRUEDIFF_TEST_SEED");
  if (Env == nullptr || *Env == '\0')
    return Default;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env || *End != '\0')
    return Default;
  return static_cast<uint64_t>(V);
}

/// Iteration count knob for the chaos/property hammers: \p EnvVar
/// (e.g. "TRUEDIFF_CHAOS_ITERS") overrides \p Default. The nightly job
/// cranks this up; per-PR runs keep it small.
inline uint64_t testIters(const char *EnvVar, uint64_t Default) {
  const char *Env = std::getenv(EnvVar);
  if (Env == nullptr || *Env == '\0')
    return Default;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env || *End != '\0' || V == 0)
    return Default;
  return static_cast<uint64_t>(V);
}

} // namespace tests
} // namespace truediff

/// Attaches both seeds to every assertion failure in the enclosing scope,
/// so a red nightly run is reproducible by exporting TRUEDIFF_TEST_SEED
/// and, when digest-sensitive behaviour is involved, TRUEDIFF_DIGEST_SEED.
#define SEED_TRACE(Seed)                                                       \
  SCOPED_TRACE("TRUEDIFF_TEST_SEED=" + std::to_string(Seed) +                  \
               " TRUEDIFF_DIGEST_SEED=" +                                      \
               std::to_string(::truediff::processDigestSeed()))

#endif // TRUEDIFF_TESTS_TESTSEED_H

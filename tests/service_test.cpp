//===- tests/service_test.cpp - Concurrent diff service tests --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the service layer: DocumentStore versioning and rollback
/// (inverse round trips at the store level), DiffService worker pool
/// semantics (backpressure, graceful shutdown), the wire protocol, the
/// metrics, the TreeDatabase mirror on the script stream, and a
/// multi-threaded hammer that the CI runs under ThreadSanitizer: 8+
/// client threads over 64+ documents with no lost updates.
///
//===----------------------------------------------------------------------===//

#include "service/DiffService.h"
#include "service/DocumentStore.h"
#include "service/Metrics.h"
#include "service/Mirror.h"
#include "service/Wire.h"

#include "corpus/Mutator.h"
#include "corpus/PyGen.h"
#include "python/Python.h"
#include "support/Rng.h"
#include "tree/SExpr.h"
#include "truechange/MTree.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>

using namespace truediff;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

TreeBuilder sexprBuilder(const std::string &Text) {
  return makeSExprBuilder(Text);
}

/// Builds a random Python module from a fixed seed; deterministic per
/// seed, usable concurrently (every invocation owns its Rng).
TreeBuilder moduleBuilder(uint64_t Seed) {
  return [Seed](TreeContext &Ctx) -> BuildResult {
    Rng R(Seed);
    corpus::PyGenOptions Opts;
    Opts.NumFunctions = 2;
    Opts.NumClasses = 1;
    Opts.MethodsPerClass = 2;
    Opts.StmtsPerBody = 3;
    return BuildResult{corpus::generateModule(Ctx, R, Opts), ""};
  };
}

/// Structurally compares the mirror database against a tree (modulo
/// URIs), starting at the database's root link.
void expectDbMatchesTree(const incremental::TreeDatabase &Db,
                         const SignatureTable &Sig, const Tree *T, URI DbUri) {
  const incremental::NodeRow *Row = Db.node(DbUri);
  ASSERT_NE(Row, nullptr);
  EXPECT_EQ(Row->Tag, T->tag());
  const TagSignature &TagSig = Sig.signature(T->tag());
  ASSERT_EQ(T->numLits(), TagSig.Lits.size());
  for (size_t I = 0; I != T->numLits(); ++I) {
    bool Found = false;
    for (const LitRef &LR : Row->Lits)
      if (LR.Link == TagSig.Lits[I].Link) {
        EXPECT_TRUE(LR.Value == T->lit(I));
        Found = true;
      }
    EXPECT_TRUE(Found) << "missing literal link";
  }
  for (size_t I = 0; I != T->arity(); ++I) {
    std::optional<URI> Kid = Db.childOf(DbUri, TagSig.Kids[I].Link);
    ASSERT_TRUE(Kid.has_value());
    expectDbMatchesTree(Db, Sig, T->kid(I), *Kid);
  }
}

void expectMirrorMatchesSnapshot(const DatabaseMirror &Mirror,
                                 const SignatureTable &Sig, DocId Doc,
                                 const DocumentSnapshot &Snap) {
  ASSERT_TRUE(Snap.Ok);
  TreeContext Ctx(Sig);
  ParseResult P = parseSExpr(Ctx, Snap.Text);
  ASSERT_TRUE(P.ok()) << P.Error;
  bool Seen = Mirror.withDatabase(Doc, [&](const incremental::TreeDatabase &Db) {
    EXPECT_EQ(Db.numNodes(), Snap.TreeSize + 1); // + virtual root
    std::optional<URI> Root = Db.childOf(NullURI, Sig.rootLink());
    ASSERT_TRUE(Root.has_value());
    expectDbMatchesTree(Db, Sig, P.Root, *Root);
  });
  EXPECT_TRUE(Seen);
}

//===----------------------------------------------------------------------===//
// DocumentStore
//===----------------------------------------------------------------------===//

class StoreTest : public ::testing::Test {
protected:
  StoreTest() : Sig(makeExpSignature()), Store(Sig) {}
  SignatureTable Sig;
  DocumentStore Store;
};

TEST_F(StoreTest, OpenSubmitSnapshot) {
  StoreResult R = Store.open(1, sexprBuilder("(Add (a) (b))"));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 0u);
  EXPECT_EQ(R.TreeSize, 3u);
  EXPECT_FALSE(R.Script.empty()); // the initializing script

  R = Store.submit(1, sexprBuilder("(Add (a) (Mul (b) (c)))"));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_EQ(R.TreeSize, 5u);
  EXPECT_FALSE(R.Script.empty());
  EXPECT_EQ(R.NodesDiffed, 3u + 5u);

  DocumentSnapshot S = Store.snapshot(1);
  ASSERT_TRUE(S.Ok);
  EXPECT_EQ(S.Version, 1u);
  EXPECT_EQ(S.Text, "(Add (a) (Mul (b) (c)))");

  EXPECT_TRUE(Store.contains(1));
  EXPECT_FALSE(Store.contains(2));
  EXPECT_FALSE(Store.open(1, sexprBuilder("(a)")).Ok); // already exists
  EXPECT_FALSE(Store.submit(2, sexprBuilder("(a)")).Ok);
  EXPECT_FALSE(Store.snapshot(2).Ok);
}

TEST_F(StoreTest, ScriptStreamReconstructsDocument) {
  // Applying the emitted init + submit scripts onto an empty MTree must
  // reconstruct the document: the script stream alone carries the full
  // state, which is what a remote truechange consumer relies on.
  MTree M(Sig);
  std::vector<EditScript> Stream;
  Store.addScriptListener([&](DocId, uint64_t, DocumentStore::StoreOp,
                              const EditScript &S,
                              const DocumentStore::ScriptInfo &) {
    Stream.push_back(S);
  });
  ASSERT_TRUE(Store.open(1, sexprBuilder("(Sub (a) (b))")).Ok);
  ASSERT_TRUE(Store.submit(1, sexprBuilder("(Sub (Add (a) (b)) (b))")).Ok);
  ASSERT_EQ(Stream.size(), 2u);
  for (const EditScript &S : Stream)
    ASSERT_TRUE(M.patchChecked(S).Ok);
  TreeContext Out(Sig);
  ParseResult Want = parseSExpr(Out, "(Sub (Add (a) (b)) (b))");
  ASSERT_TRUE(Want.ok());
  EXPECT_TRUE(M.equalsTree(Want.Root));
}

TEST_F(StoreTest, RollbackRestoresExactTrees) {
  // The store-level inverse round trip: apply script then its recorded
  // inverse restores a tree equal to the original -- including URIs,
  // which is stronger than structural equality.
  ASSERT_TRUE(Store.open(1, sexprBuilder("(Add (Num 1) (Num 2))")).Ok);
  DocumentSnapshot V0 = Store.snapshot(1);

  ASSERT_TRUE(Store.submit(1, sexprBuilder("(Mul (Num 2) (Num 3))")).Ok);
  DocumentSnapshot V1 = Store.snapshot(1);

  ASSERT_TRUE(
      Store.submit(1, sexprBuilder("(Mul (Num 2) (Add (Num 3) (a)))")).Ok);

  StoreResult R = Store.rollback(1);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 1u);
  DocumentSnapshot S = Store.snapshot(1);
  EXPECT_EQ(S.Text, V1.Text);
  EXPECT_EQ(S.UriText, V1.UriText); // literal, URI-level restoration

  R = Store.rollback(1);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 0u);
  S = Store.snapshot(1);
  EXPECT_EQ(S.Text, V0.Text);
  EXPECT_EQ(S.UriText, V0.UriText);

  EXPECT_FALSE(Store.rollback(1).Ok); // history exhausted
}

TEST_F(StoreTest, RollbackAfterResubmitKeepsHistoryConsistent) {
  ASSERT_TRUE(Store.open(1, sexprBuilder("(a)")).Ok);
  ASSERT_TRUE(Store.submit(1, sexprBuilder("(Add (a) (b))")).Ok);
  DocumentSnapshot V1 = Store.snapshot(1);
  ASSERT_TRUE(Store.rollback(1).Ok);
  // Diverge: submit something else, then roll all the way back again.
  ASSERT_TRUE(Store.submit(1, sexprBuilder("(Mul (c) (d))")).Ok);
  ASSERT_TRUE(Store.submit(1, sexprBuilder("(Mul (d) (c))")).Ok);
  ASSERT_TRUE(Store.rollback(1).Ok);
  DocumentSnapshot S = Store.snapshot(1);
  EXPECT_EQ(S.Text, "(Mul (c) (d))");
  ASSERT_TRUE(Store.rollback(1).Ok);
  EXPECT_EQ(Store.snapshot(1).Text, "(a)");
  (void)V1;
}

TEST(StoreConfigTest, HistoryRingIsBounded) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config Cfg;
  Cfg.HistoryCapacity = 2;
  DocumentStore Store(Sig, Cfg);
  ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(b)")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(c)")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(d)")).Ok);
  EXPECT_TRUE(Store.rollback(1).Ok);  // v3 -> v2
  EXPECT_TRUE(Store.rollback(1).Ok);  // v2 -> v1
  EXPECT_FALSE(Store.rollback(1).Ok); // v1's record was evicted
  EXPECT_EQ(Store.snapshot(1).Text, "(b)");
}

TEST(StoreConfigTest, RollbackPastEvictedHistoryFailsCleanly) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config Cfg;
  Cfg.HistoryCapacity = 2;
  DocumentStore Store(Sig, Cfg);
  ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);

  // At version 0 there is nothing to undo; that is its own error, not the
  // eviction one.
  StoreResult R = Store.rollback(1);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no history"), std::string::npos) << R.Error;

  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(b)")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(c)")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(d)")).Ok); // evicts v1's record
  ASSERT_TRUE(Store.rollback(1).Ok);                        // v3 -> v2
  ASSERT_TRUE(Store.rollback(1).Ok);                        // v2 -> v1
  DocumentSnapshot AtBoundary = Store.snapshot(1);

  // v1's record was evicted from the ring: the rollback must fail with a
  // clean protocol error naming the eviction, not hand back a torn tree.
  R = Store.rollback(1);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("evicted from the history ring"), std::string::npos)
      << R.Error;

  // The failed rollback touched nothing: same version, same URIs, digests
  // still clean, and the document keeps serving.
  DocumentSnapshot After = Store.snapshot(1);
  EXPECT_EQ(After.Version, AtBoundary.Version);
  EXPECT_EQ(After.UriText, AtBoundary.UriText);
  EXPECT_EQ(Store.checkDigests(1), std::nullopt);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(Add (a) (b))")).Ok);
  EXPECT_EQ(Store.snapshot(1).Text, "(Add (a) (b))");
}

TEST(StoreConfigTest, CompactionPreservesRollback) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config Cfg;
  Cfg.CompactionFactor = 1; // compact aggressively
  Cfg.HistoryCapacity = 64;
  DocumentStore Store(Sig, Cfg);
  ASSERT_TRUE(Store.open(1, makeSExprBuilder("(Num 0)")).Ok);

  std::vector<DocumentSnapshot> Snaps;
  Snaps.push_back(Store.snapshot(1));
  for (int I = 1; I <= 24; ++I) {
    std::string Text =
        "(Add (Num " + std::to_string(I) + ") (Mul (Num " +
        std::to_string(I * 2) + ") (Num " + std::to_string(I * 3) + ")))";
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder(Text)).Ok);
    Snaps.push_back(Store.snapshot(1));
  }
  for (int I = 24; I >= 1; --I) {
    ASSERT_TRUE(Store.rollback(1).Ok) << "at version " << I;
    DocumentSnapshot S = Store.snapshot(1);
    EXPECT_EQ(S.Text, Snaps[static_cast<size_t>(I) - 1].Text);
    EXPECT_EQ(S.UriText, Snaps[static_cast<size_t>(I) - 1].UriText);
  }
}

TEST_F(StoreTest, EraseRemovesDocument) {
  ASSERT_TRUE(Store.open(1, sexprBuilder("(a)")).Ok);
  EXPECT_TRUE(Store.erase(1));
  EXPECT_FALSE(Store.erase(1));
  EXPECT_FALSE(Store.contains(1));
  EXPECT_FALSE(Store.submit(1, sexprBuilder("(b)")).Ok);
}

TEST_F(StoreTest, BuilderErrorsAreReported) {
  StoreResult R = Store.open(1, sexprBuilder("(Nope)"));
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(Store.contains(1));

  ASSERT_TRUE(Store.open(2, sexprBuilder("(a)")).Ok);
  R = Store.submit(2, sexprBuilder("(Nope ("));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(Store.snapshot(2).Version, 0u); // unchanged
}

//===----------------------------------------------------------------------===//
// Warm-path digest cache
//===----------------------------------------------------------------------===//

/// Replays identical chains of document versions into a warm store (Step-1
/// digests persisted across requests, the default) and a cold store (every
/// request rehashes from scratch). The cache is purely an optimisation:
/// the emitted scripts must be byte-identical, every script must
/// type-check, and the warm store's cached digests must always equal a
/// from-scratch recomputation.
TEST(DigestCacheTest, WarmAndColdScriptsAreByteIdentical) {
  constexpr unsigned NumChains = 25;
  constexpr unsigned MutationsPerChain = 20; // 25 x 20 = 500 warm diffs

  SignatureTable Sig = python::makePythonSignature();
  LinearTypeChecker Checker(Sig);
  uint64_t Seed = tests::testSeed(11);
  SEED_TRACE(Seed);
  uint64_t WarmRehashed = 0, ColdRehashed = 0;
  for (unsigned Chain = 0; Chain != NumChains; ++Chain) {
    // Generate the version texts once, outside either store.
    TreeContext Scratch(Sig);
    Rng R(Chain * 48271 + Seed);
    corpus::PyGenOptions GenOpts;
    GenOpts.NumFunctions = 2;
    GenOpts.NumClasses = 1;
    GenOpts.MethodsPerClass = 2;
    GenOpts.StmtsPerBody = 3;
    const Tree *Module = corpus::generateModule(Scratch, R, GenOpts);
    std::vector<std::string> Versions{printSExpr(Sig, Module)};
    for (unsigned I = 0; I != MutationsPerChain; ++I) {
      Module = corpus::mutateModule(Scratch, R, Module, {});
      Versions.push_back(printSExpr(Sig, Module));
    }

    DocumentStore::Config ColdCfg;
    ColdCfg.PersistDigests = false;
    DocumentStore Warm(Sig), Cold(Sig, ColdCfg);
    for (size_t V = 0; V != Versions.size(); ++V) {
      TreeBuilder Build = makeSExprBuilder(Versions[V]);
      StoreResult WR = V == 0 ? Warm.open(1, Build) : Warm.submit(1, Build);
      StoreResult CR = V == 0 ? Cold.open(1, Build) : Cold.submit(1, Build);
      ASSERT_TRUE(WR.Ok) << WR.Error;
      ASSERT_TRUE(CR.Ok) << CR.Error;
      ASSERT_EQ(serializeEditScript(Sig, WR.Script),
                serializeEditScript(Sig, CR.Script))
          << "chain " << Chain << " version " << V;
      auto TC = V == 0 ? Checker.checkInitializing(WR.Script)
                       : Checker.checkWellTyped(WR.Script);
      ASSERT_TRUE(TC.Ok) << TC.Error;
      ASSERT_EQ(Warm.checkDigests(1), std::nullopt)
          << "chain " << Chain << " version " << V;
    }
    WarmRehashed += Warm.stats().NodesRehashed;
    ColdRehashed += Cold.stats().NodesRehashed;
    EXPECT_GT(Warm.stats().NodesDigestCacheSaved, 0u);
  }
  // Small mutations against ~100-node modules: the warm path must rehash
  // far fewer nodes than the cold path over the whole corpus.
  EXPECT_LT(WarmRehashed * 2, ColdRehashed)
      << "warm " << WarmRehashed << " vs cold " << ColdRehashed;
}

TEST(DigestCacheTest, CacheSurvivesRollbackAndCompaction) {
  // Rollback and history-ring compaction rebuild the document into a
  // fresh context, dropping the cached digests. Later warm diffs must
  // still emit scripts byte-identical to a cold store driven through the
  // same sequence.
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config WarmCfg;
  WarmCfg.CompactionFactor = 1; // compact aggressively
  WarmCfg.HistoryCapacity = 64;
  DocumentStore::Config ColdCfg = WarmCfg;
  ColdCfg.PersistDigests = false;
  DocumentStore Warm(Sig, WarmCfg), Cold(Sig, ColdCfg);

  auto Step = [&](auto Op) {
    StoreResult WR = Op(Warm), CR = Op(Cold);
    ASSERT_TRUE(WR.Ok) << WR.Error;
    ASSERT_TRUE(CR.Ok) << CR.Error;
    EXPECT_EQ(serializeEditScript(Sig, WR.Script),
              serializeEditScript(Sig, CR.Script));
    ASSERT_EQ(Warm.checkDigests(1), std::nullopt);
  };
  Step([](DocumentStore &S) { return S.open(1, makeSExprBuilder("(Num 0)")); });
  uint64_t Seed = tests::testSeed(4242);
  SEED_TRACE(Seed);
  Rng R(Seed);
  uint64_t Undoable = 0;
  for (int Round = 0; Round != 40; ++Round) {
    if (Undoable != 0 && R.chance(25)) {
      --Undoable;
      Step([](DocumentStore &S) { return S.rollback(1); });
    } else {
      ++Undoable;
      std::string Text = "(Add (Num " + std::to_string(R.range(0, 9)) +
                         ") (Mul (Num " + std::to_string(R.range(0, 9)) +
                         ") (Num " + std::to_string(R.range(0, 9)) + ")))";
      Step([&](DocumentStore &S) { return S.submit(1, makeSExprBuilder(Text)); });
    }
  }
}

//===----------------------------------------------------------------------===//
// DiffService
//===----------------------------------------------------------------------===//

TEST(DiffServiceTest, SubmitReturnsSerializedScript) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  DiffService Service(Store, Cfg);

  Response R = Service.open(1, makeSExprBuilder("(Add (a) (b))"));
  ASSERT_TRUE(R.Ok) << R.Error;

  R = Service.submit(1, makeSExprBuilder("(Add (b) (a))"));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_GT(R.EditCount, 0u);
  ASSERT_FALSE(R.Payload.empty());

  // The payload parses back into an equal script (wire round trip).
  ParseScriptResult P = parseEditScript(Sig, R.Payload);
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(serializeEditScript(Sig, P.Script), R.Payload);
  EXPECT_EQ(P.Script.size(), R.EditCount);

  R = Service.getVersion(1);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Version, 1u);
  EXPECT_EQ(R.Payload, "(Add (b) (a))");

  R = Service.stats();
  ASSERT_TRUE(R.Ok);
  EXPECT_NE(R.Payload.find("\"scripts_emitted\":1"), std::string::npos);
  EXPECT_NE(R.Payload.find("\"store\":{\"documents\":1"), std::string::npos);

  Service.shutdown();
  EXPECT_FALSE(Service.submit(1, makeSExprBuilder("(a)")).Ok);
}

TEST(DiffServiceTest, BackpressureRejectsWhenQueueFull) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 2;
  DiffService Service(Store, Cfg);

  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);

  // A builder that blocks the single worker until released.
  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  auto Slow = [Gate](TreeContext &Ctx) -> BuildResult {
    Gate.wait();
    return BuildResult{Ctx.make("b", {}, {}), ""};
  };

  std::future<Response> F1 = Service.submitAsync(1, Slow);
  // Wait until the worker has dequeued F1 and is parked in the builder.
  while (Service.queueDepth() != 0)
    std::this_thread::yield();

  std::future<Response> F2 = Service.submitAsync(1, makeSExprBuilder("(c)"));
  std::future<Response> F3 = Service.submitAsync(1, makeSExprBuilder("(d)"));
  std::future<Response> F4 = Service.submitAsync(1, makeSExprBuilder("(a)"));

  Response R4 = F4.get(); // rejected immediately, worker still blocked
  EXPECT_FALSE(R4.Ok);
  EXPECT_NE(R4.Error.find("queue full"), std::string::npos);
  EXPECT_GE(Service.metrics().Rejected.load(), 1u);

  GateP.set_value();
  EXPECT_TRUE(F1.get().Ok);
  EXPECT_TRUE(F2.get().Ok);
  EXPECT_TRUE(F3.get().Ok);
}

TEST(DiffServiceTest, GracefulShutdownDrainsAcceptedWork) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 64;
  DiffService Service(Store, Cfg);

  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);

  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  auto Slow = [Gate](TreeContext &Ctx) -> BuildResult {
    Gate.wait();
    return BuildResult{Ctx.make("b", {}, {}), ""};
  };

  std::vector<std::future<Response>> Futures;
  Futures.push_back(Service.submitAsync(1, Slow));
  for (int I = 0; I != 5; ++I)
    Futures.push_back(Service.submitAsync(1, makeSExprBuilder("(c)")));

  std::thread Release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    GateP.set_value();
  });
  Service.shutdown(); // must drain all six accepted submits
  Release.join();

  for (std::future<Response> &F : Futures)
    EXPECT_TRUE(F.get().Ok);
  EXPECT_EQ(Store.snapshot(1).Version, 6u);
}

//===----------------------------------------------------------------------===//
// Deadlines, fallback scripts, and the shutdown race
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, FallbackScriptIsWellTypedAndReconstructs) {
  // The degraded answer must uphold every script guarantee: applying the
  // emitted stream (init + fallback) onto an empty MTree with full
  // compliance checking reconstructs the target, and the recorded
  // inverse still rolls the document back exactly.
  MTree M(Sig);
  std::vector<EditScript> Stream;
  Store.addScriptListener([&](DocId, uint64_t, DocumentStore::StoreOp,
                              const EditScript &S,
                              const DocumentStore::ScriptInfo &) {
    Stream.push_back(S);
  });
  ASSERT_TRUE(Store.open(1, sexprBuilder("(Sub (Add (a) (b)) (b))")).Ok);
  DocumentSnapshot V0 = Store.snapshot(1);

  SubmitOptions Opts;
  Opts.UseFallback = [] { return true; };
  StoreResult R =
      Store.submit(1, sexprBuilder("(Mul (Num 1) (Num 2))"), Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.UsedFallback);
  EXPECT_EQ(R.Version, 1u);
  EXPECT_FALSE(R.Script.empty());

  ASSERT_EQ(Stream.size(), 2u);
  for (const EditScript &S : Stream)
    ASSERT_TRUE(M.patchChecked(S).Ok);
  TreeContext Out(Sig);
  ParseResult Want = parseSExpr(Out, "(Mul (Num 1) (Num 2))");
  ASSERT_TRUE(Want.ok());
  EXPECT_TRUE(M.equalsTree(Want.Root));

  // The stored tree's digest cache stayed coherent through the
  // replace-root path, and rollback undoes it URI-exactly.
  EXPECT_EQ(Store.checkDigests(1), std::nullopt);
  ASSERT_TRUE(Store.rollback(1).Ok);
  DocumentSnapshot S = Store.snapshot(1);
  EXPECT_EQ(S.Text, V0.Text);
  EXPECT_EQ(S.UriText, V0.UriText);
  EXPECT_EQ(Store.checkDigests(1), std::nullopt);
}

TEST(DiffServiceTest, ExpiredQueuedRequestsAreShedWithRetryHint) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 8;
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);

  // Park the single worker in a builder, then queue a submit whose 1ms
  // deadline expires while it waits.
  std::promise<void> GateP;
  std::shared_future<void> Gate(GateP.get_future());
  auto Slow = [Gate](TreeContext &Ctx) -> BuildResult {
    Gate.wait();
    return BuildResult{Ctx.make("b", {}, {}), ""};
  };
  std::future<Response> F1 = Service.submitAsync(1, Slow);
  while (Service.queueDepth() != 0)
    std::this_thread::yield();
  std::future<Response> F2 =
      Service.submitAsync(1, makeSExprBuilder("(c)"), /*DeadlineMs=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  GateP.set_value();

  EXPECT_TRUE(F1.get().Ok);
  Response R2 = F2.get();
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.find("deadline expired"), std::string::npos) << R2.Error;
  EXPECT_GE(R2.RetryAfterMs, 1u);
  EXPECT_EQ(Service.metrics().DeadlineExpired.load(), 1u);
  // The shed request never executed: only the gated submit advanced the
  // document.
  EXPECT_EQ(Store.snapshot(1).Version, 1u);
  // The wire rendering carries the hint.
  std::string Wire = formatWireResponse(R2);
  EXPECT_NE(Wire.find(" retry_after_ms="), std::string::npos) << Wire;
}

TEST(DiffServiceTest, OverDeadlineDiffAnswersWithFallbackScript) {
  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  DiffService Service(Store, Cfg);
  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(Add (Num 1) (Num 2))")).Ok);

  // The build itself overruns the 5ms deadline, so the post-build check
  // must choose the replace-root fallback instead of diffing.
  auto SlowBuild = [](TreeContext &Ctx) -> BuildResult {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return makeSExprBuilder("(Mul (c) (d))")(Ctx);
  };
  uint64_t FallbacksBefore = Service.metrics().FallbackScripts.load();
  Response R = Service.submit(1, SlowBuild, /*DeadlineMs=*/5);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Fallback);
  EXPECT_EQ(R.Version, 1u);
  EXPECT_FALSE(R.Payload.empty());
  EXPECT_EQ(Service.metrics().FallbackScripts.load(), FallbacksBefore + 1);
  EXPECT_EQ(Store.snapshot(1).Text, "(Mul (c) (d))");
  // The ok line is marked so clients know the script is not minimal.
  std::string Wire = formatWireResponse(R);
  EXPECT_NE(Wire.find(" fallback=1"), std::string::npos) << Wire;

  // Without a deadline the same service still serves minimal diffs.
  Response R2 = Service.submit(1, makeSExprBuilder("(Mul (c) (c))"));
  ASSERT_TRUE(R2.Ok);
  EXPECT_FALSE(R2.Fallback);
}

TEST(ConcurrentServiceTest, ShutdownRaceNeverBreaksPromises) {
  // Requests racing shutdown() must each get exactly one of: a real
  // response (drained) or a rejection -- never a broken std::promise.
  SignatureTable Sig = makeExpSignature();
  uint64_t Seed = tests::testSeed(77);
  SEED_TRACE(Seed);
  constexpr int Rounds = 12;
  constexpr int Producers = 4;
  constexpr int PerProducer = 24;
  Rng Pacing(Seed);
  for (int Round = 0; Round != Rounds; ++Round) {
    DocumentStore Store(Sig);
    ServiceConfig Cfg;
    Cfg.Workers = 2;
    Cfg.QueueCapacity = 4; // small: exercise full-queue and closed paths
    DiffService Service(Store, Cfg);
    ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);

    std::vector<std::vector<std::future<Response>>> Futures(Producers);
    std::vector<std::thread> Threads;
    for (int T = 0; T != Producers; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I != PerProducer; ++I)
          Futures[T].push_back(
              Service.submitAsync(1, makeSExprBuilder("(b)")));
      });

    // Close somewhere inside the producers' submission window.
    std::this_thread::sleep_for(
        std::chrono::microseconds(Pacing.below(1500)));
    Service.shutdown();
    for (std::thread &T : Threads)
      T.join();

    uint64_t Accepted = 0;
    for (auto &PerThread : Futures)
      for (std::future<Response> &F : PerThread) {
        ASSERT_TRUE(F.valid());
        try {
          Response R = F.get(); // must never throw broken_promise
          if (R.Ok)
            ++Accepted;
          else
            EXPECT_FALSE(R.Error.empty());
        } catch (const std::future_error &E) {
          FAIL() << "broken promise in round " << Round << ": " << E.what();
        }
      }
    // Every accepted request really executed before the workers joined.
    EXPECT_EQ(Store.snapshot(1).Version, Accepted);
  }
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(WireTest, ParsesCommands) {
  WireCommand C = parseWireCommand("open 12 (Add (a) (b))");
  EXPECT_EQ(C.K, WireCommand::Kind::Open);
  EXPECT_EQ(C.Doc, 12u);
  EXPECT_EQ(C.Arg, "(Add (a) (b))");

  C = parseWireCommand("submit 3 (a)");
  EXPECT_EQ(C.K, WireCommand::Kind::Submit);
  C = parseWireCommand("rollback 3");
  EXPECT_EQ(C.K, WireCommand::Kind::Rollback);
  C = parseWireCommand("get 3");
  EXPECT_EQ(C.K, WireCommand::Kind::Get);
  C = parseWireCommand("stats");
  EXPECT_EQ(C.K, WireCommand::Kind::Stats);
  C = parseWireCommand("health");
  EXPECT_EQ(C.K, WireCommand::Kind::Health);
  EXPECT_EQ(parseWireCommand("health extra").K, WireCommand::Kind::Invalid);
  C = parseWireCommand("quit");
  EXPECT_EQ(C.K, WireCommand::Kind::Quit);

  EXPECT_EQ(parseWireCommand("").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("open x (a)").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("open 1").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("rollback 1 extra").K,
            WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("frobnicate 1").K, WireCommand::Kind::Invalid);
}

TEST(WireTest, ToleratesCrlfFraming) {
  // One trailing '\r' is line framing from a CRLF transport, not payload.
  WireCommand C = parseWireCommand("get 3\r");
  EXPECT_EQ(C.K, WireCommand::Kind::Get);
  EXPECT_EQ(C.Doc, 3u);
  C = parseWireCommand("open 1 (a)\r");
  EXPECT_EQ(C.K, WireCommand::Kind::Open);
  EXPECT_EQ(C.Arg, "(a)");

  // A bare "\r" or whitespace-only frame is an empty command.
  EXPECT_EQ(parseWireCommand("\r").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("   \t ").K, WireCommand::Kind::Invalid);
}

TEST(WireTest, RejectsControlCharacters) {
  // Interior control bytes never reach a tree builder: NUL, escape bytes
  // and interior '\r' (frame smuggling) all fail with a protocol error.
  WireCommand C = parseWireCommand(std::string_view("open 1 (a\x01)", 12));
  EXPECT_EQ(C.K, WireCommand::Kind::Invalid);
  EXPECT_NE(C.Error.find("control character 0x01"), std::string::npos)
      << C.Error;

  C = parseWireCommand(std::string_view("get\0 3", 6));
  EXPECT_EQ(C.K, WireCommand::Kind::Invalid);
  EXPECT_NE(C.Error.find("0x00"), std::string::npos) << C.Error;

  C = parseWireCommand("submit 2 (a)\rrollback 2");
  EXPECT_EQ(C.K, WireCommand::Kind::Invalid);
  EXPECT_NE(C.Error.find("0x0d"), std::string::npos) << C.Error;
}

TEST(WireTest, BoundsFrameSize) {
  // Oversized frames are rejected before any parsing work happens.
  std::string Huge = "open 1 " + std::string(MaxWireLineBytes, 'x');
  WireCommand C = parseWireCommand(Huge);
  EXPECT_EQ(C.K, WireCommand::Kind::Invalid);
  EXPECT_NE(C.Error.find("oversized frame"), std::string::npos) << C.Error;

  // The largest legal frame still reaches the command parser (it fails
  // later, in the s-expression parser, which is not the framing layer's
  // business).
  std::string MaxLegal = "open 1 ";
  MaxLegal += std::string(MaxWireLineBytes - MaxLegal.size(), 'x');
  EXPECT_EQ(parseWireCommand(MaxLegal).K, WireCommand::Kind::Open);
}

TEST(WireTest, RejectsOverflowingDocIds) {
  // UINT64_MAX parses; anything bigger is rejected instead of silently
  // wrapping onto another client's document.
  WireCommand C = parseWireCommand("get 18446744073709551615");
  EXPECT_EQ(C.K, WireCommand::Kind::Get);
  EXPECT_EQ(C.Doc, std::numeric_limits<DocId>::max());
  EXPECT_EQ(parseWireCommand("get 18446744073709551616").K,
            WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("get 99999999999999999999999").K,
            WireCommand::Kind::Invalid);
}

TEST(WireTest, FormatsResponses) {
  Response R;
  R.Ok = true;
  R.Version = 3;
  R.EditCount = 5;
  R.CoalescedSize = 2;
  R.TreeSize = 40;
  R.Payload = "load(Num_9, [], [])";
  EXPECT_EQ(formatWireResponse(R),
            "ok version=3 edits=5 coalesced=2 size=40\n"
            "load(Num_9, [], [])\n.\n");

  Response E;
  E.Error = "no such document";
  EXPECT_EQ(formatWireResponse(E), "err no such document\n.\n");
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, HistogramPercentilesAreOrdered) {
  LatencyHistogram H;
  for (int I = 1; I <= 1000; ++I)
    H.record(static_cast<double>(I) / 100.0); // 0.01ms .. 10ms
  LatencyHistogram::Summary S = H.summarize();
  EXPECT_EQ(S.Count, 1000u);
  EXPECT_LE(S.P50Ms, S.P95Ms);
  EXPECT_LE(S.P95Ms, S.P99Ms);
  EXPECT_LE(S.P99Ms, S.MaxMs * 2.0); // bucket upper bound rounds up
  EXPECT_NEAR(S.MeanMs, 5.0, 0.5);
  EXPECT_NEAR(S.MaxMs, 10.0, 0.1);
}

TEST(MetricsTest, JsonDumpHasAllSections) {
  ServiceMetrics M;
  M.Ops[static_cast<unsigned>(OpKind::Submit)].Requests = 7;
  M.QueueWait.record(0.5);
  std::string J = M.toJson(3, 256, 4);
  for (const char *Key :
       {"\"workers\":4",
        "\"queue\":{\"depth\":3,\"capacity\":256,\"doc_queues\":0}",
        "\"open\"", "\"submit\"", "\"rollback\"", "\"get_version\"",
        "\"stats\"", "\"queue_wait\"", "\"requests\":7",
        "\"deadline_expired\":0", "\"fallback_scripts\":0",
        "\"shed\":0", "\"admission_rejected\":0", "\"budget_rejected\":0",
        "\"mem_used_bytes\":0", "\"mem_budget_bytes\":0",
        "\"breaker_trips\":0", "\"degraded_seconds\":0.000000"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
}

TEST(MetricsTest, RobustnessCountersAreMonotone) {
  // The counters the failure-mode matrix (DESIGN.md Section 10) leans on
  // must exist and only ever grow as events accumulate.
  ServiceMetrics M;
  auto Dump = [&] { return M.toJson(0, 8, 1); };
  std::string Before = Dump();
  EXPECT_NE(Before.find("\"deadline_expired\":0"), std::string::npos);
  M.DeadlineExpired.fetch_add(1);
  M.FallbackScripts.fetch_add(2);
  M.BreakerTrips.store(1);
  M.DegradedUs.store(1500000); // 1.5s degraded
  std::string After = Dump();
  EXPECT_NE(After.find("\"deadline_expired\":1"), std::string::npos) << After;
  EXPECT_NE(After.find("\"fallback_scripts\":2"), std::string::npos) << After;
  EXPECT_NE(After.find("\"breaker_trips\":1"), std::string::npos) << After;
  EXPECT_NE(After.find("\"degraded_seconds\":1.500000"), std::string::npos)
      << After;
  M.DeadlineExpired.fetch_add(1);
  EXPECT_NE(Dump().find("\"deadline_expired\":2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// DatabaseMirror on the script stream
//===----------------------------------------------------------------------===//

class MirrorTest : public ::testing::TestWithParam<incremental::IndexMode> {};

TEST_P(MirrorTest, TracksOpenSubmitRollback) {
  SignatureTable Sig = python::makePythonSignature();
  DocumentStore Store(Sig);
  DatabaseMirror Mirror(Sig, GetParam());
  Mirror.attach(Store);

  ASSERT_TRUE(Store.open(1, moduleBuilder(100)).Ok);
  expectMirrorMatchesSnapshot(Mirror, Sig, 1, Store.snapshot(1));

  ASSERT_TRUE(Store.submit(1, moduleBuilder(101)).Ok);
  expectMirrorMatchesSnapshot(Mirror, Sig, 1, Store.snapshot(1));

  ASSERT_TRUE(Store.submit(1, moduleBuilder(102)).Ok);
  expectMirrorMatchesSnapshot(Mirror, Sig, 1, Store.snapshot(1));

  ASSERT_TRUE(Store.rollback(1).Ok);
  expectMirrorMatchesSnapshot(Mirror, Sig, 1, Store.snapshot(1));
  EXPECT_EQ(Mirror.lastVersion(1), Store.snapshot(1).Version);

  ASSERT_TRUE(Store.rollback(1).Ok);
  expectMirrorMatchesSnapshot(Mirror, Sig, 1, Store.snapshot(1));
  EXPECT_EQ(Mirror.numDocuments(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, MirrorTest,
                         ::testing::Values(incremental::IndexMode::OneToOne,
                                           incremental::IndexMode::ManyToOne));

//===----------------------------------------------------------------------===//
// Concurrent hammer (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(ConcurrentServiceTest, HammerManyClientsManyDocuments) {
  constexpr unsigned NumClients = 8;
  constexpr unsigned NumDocs = 64;
  constexpr unsigned OpsPerClient = 48;

  SignatureTable Sig = python::makePythonSignature();
  DocumentStore::Config StoreCfg;
  StoreCfg.NumShards = 8;
  StoreCfg.HistoryCapacity = 8;
  DocumentStore Store(Sig, StoreCfg);
  DatabaseMirror Mirror(Sig, incremental::IndexMode::OneToOne);
  Mirror.attach(Store);

  ServiceConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = 4096; // ample: this test is about races, not rejects
  DiffService Service(Store, Cfg);

  // Every document is opened up front so all ops target live documents.
  for (DocId Doc = 1; Doc <= NumDocs; ++Doc)
    ASSERT_TRUE(Service.open(Doc, moduleBuilder(Doc)).Ok);

  // Per-document tallies of *successful* version-changing operations.
  std::array<std::atomic<int64_t>, NumDocs + 1> Submits{};
  std::array<std::atomic<int64_t>, NumDocs + 1> Rollbacks{};

  std::vector<std::thread> Clients;
  Clients.reserve(NumClients);
  for (unsigned C = 0; C != NumClients; ++C) {
    Clients.emplace_back([&, C] {
      Rng R(C * 7919 + 17);
      for (unsigned I = 0; I != OpsPerClient; ++I) {
        DocId Doc = static_cast<DocId>(R.below(NumDocs) + 1);
        uint64_t Kind = R.below(100);
        if (Kind < 55) {
          Response Resp = Service.submit(Doc, moduleBuilder(R.next()));
          if (Resp.Ok)
            Submits[Doc].fetch_add(1, std::memory_order_relaxed);
        } else if (Kind < 70) {
          Response Resp = Service.rollback(Doc);
          if (Resp.Ok)
            Rollbacks[Doc].fetch_add(1, std::memory_order_relaxed);
        } else if (Kind < 95) {
          Response Resp = Service.getVersion(Doc);
          EXPECT_TRUE(Resp.Ok);
        } else {
          EXPECT_TRUE(Service.stats().Ok);
        }
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  Service.shutdown();

  // No lost updates: each document's final version equals its successful
  // submits minus its successful rollbacks, and the mirror -- fed purely
  // by the script stream -- agrees with the store's final trees.
  for (DocId Doc = 1; Doc <= NumDocs; ++Doc) {
    DocumentSnapshot S = Store.snapshot(Doc);
    ASSERT_TRUE(S.Ok);
    int64_t Expected = Submits[Doc].load() - Rollbacks[Doc].load();
    EXPECT_EQ(static_cast<int64_t>(S.Version), Expected) << "doc " << Doc;
    expectMirrorMatchesSnapshot(Mirror, Sig, Doc, S);
  }
}

TEST(ConcurrentServiceTest, RollbackUnderContentionRestoresSnapshots) {
  // Writers hammer one document while readers snapshot it; afterwards,
  // rolling everything back restores the opening tree exactly.
  SignatureTable Sig = makeExpSignature();
  DocumentStore::Config StoreCfg;
  StoreCfg.HistoryCapacity = 1024;
  DocumentStore Store(Sig, StoreCfg);
  ASSERT_TRUE(Store.open(1, makeSExprBuilder("(Add (Num 1) (Num 2))")).Ok);
  DocumentSnapshot V0 = Store.snapshot(1);

  constexpr unsigned NumWriters = 4;
  constexpr unsigned SubmitsPerWriter = 32;
  std::vector<std::thread> Writers;
  for (unsigned W = 0; W != NumWriters; ++W) {
    Writers.emplace_back([&, W] {
      for (unsigned I = 0; I != SubmitsPerWriter; ++I) {
        std::string Text = "(Mul (Num " + std::to_string(W) + ") (Num " +
                           std::to_string(I) + "))";
        ASSERT_TRUE(Store.submit(1, makeSExprBuilder(Text)).Ok);
      }
    });
  }
  std::thread Reader([&] {
    for (int I = 0; I != 64; ++I)
      ASSERT_TRUE(Store.snapshot(1).Ok);
  });
  for (std::thread &T : Writers)
    T.join();
  Reader.join();

  ASSERT_EQ(Store.snapshot(1).Version, NumWriters * SubmitsPerWriter);
  for (unsigned I = 0; I != NumWriters * SubmitsPerWriter; ++I)
    ASSERT_TRUE(Store.rollback(1).Ok) << "rollback " << I;
  DocumentSnapshot S = Store.snapshot(1);
  EXPECT_EQ(S.Text, V0.Text);
  EXPECT_EQ(S.UriText, V0.UriText);
}

} // namespace

//===- tests/failover_test.cpp - Failover and chaos suite ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failover chaos suite: seeded network-fault schedules (FaultyNetEnv
/// short writes, latency, partitions, kills) over real loopback sockets,
/// follower promotion via the `promote <epoch>` admin verb, stale-leader
/// fencing, and the resilient client's survival guarantees:
///
///   - no durable-acked write (acked to the client AND replicated to the
///     follower) is lost across a failover,
///   - the promoted leader's state is byte-identical (URI rendering +
///     SHA-256 digest) to a committed prefix of the old leader's stream,
///   - a demoted/fenced leader answers writes with not_leader carrying a
///     leader address hint and retry_after_ms,
///   - a retried submit is never applied twice (version-CAS dedup),
///   - truncated and duplicated TLV payloads answer malformed_frame
///     without killing the connection or the process.
///
/// Every schedule is reproducible: export the TRUEDIFF_TEST_SEED a red
/// run prints. The nightly chaos job cranks TRUEDIFF_FAILOVER_ITERS and
/// randomizes the seed; per-PR runs are deterministic.
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "client/Client.h"
#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "net/EventLoop.h"
#include "net/Frame.h"
#include "net/NetEnv.h"
#include "net/NetServer.h"
#include "net/Role.h"
#include "net/ServiceHandler.h"
#include "persist/BinaryCodec.h"
#include "persist/Varint.h"
#include "replica/Failover.h"
#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/Protocol.h"
#include "replica/ReplicationLog.h"
#include "service/DiffService.h"
#include "service/DocumentStore.h"
#include "support/Rng.h"
#include "support/Sha256.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

bool waitUntil(const std::function<bool()> &Pred, int TimeoutMs = 30000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

/// Fresh-URI tree builder from an encodeTree blob (what a real binary
/// client submission produces).
service::TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](
             TreeContext &Ctx) -> service::BuildResult {
    persist::DecodeTreeResult D =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, service::ErrCode::MalformedFrame};
    return {D.Root, "", service::ErrCode::None};
  };
}

//===----------------------------------------------------------------------===//
// Node: a full replica node -- one event loop (optionally faulty), one
// client-facing NetServer routed by role, a follower, and -- after
// promote() -- the whole leader stack (store, log, Leader endpoint,
// DiffService, role-gated ServiceHandler).
//===----------------------------------------------------------------------===//

struct Node {
  const SignatureTable &Sig;
  net::FaultyNetEnv Env;
  net::EventLoop Loop;
  net::RoleState Role;
  blame::ProvenanceIndex Prov;

  std::unique_ptr<replica::Follower> F;
  std::unique_ptr<replica::ReplicaReadHandler> Reader;
  std::unique_ptr<replica::FailoverHandler> Router;
  std::unique_ptr<net::NetServer> ClientSrv;
  bool Started = false;

  // Leader-side stack, built by promote().
  std::unique_ptr<service::DocumentStore> Store;
  std::unique_ptr<replica::ReplicationLog> Log;
  std::unique_ptr<replica::Leader> Lead;
  std::unique_ptr<service::DiffService> Svc;
  std::unique_ptr<net::ServiceHandler> Writer;

  explicit Node(const SignatureTable &Sig,
                net::FaultyNetEnv::Config EC = net::FaultyNetEnv::Config())
      : Sig(Sig), Env(EC), Loop(&Env) {
    F = std::make_unique<replica::Follower>(Loop, Sig);
    replica::ReplicaReadHandler::Config RC;
    RC.Role = &Role;
    RC.OnPromote = [this](uint64_t E) { return promote(E); };
    RC.OnDemote = [this](std::string Addr) { return demote(std::move(Addr)); };
    Reader = std::make_unique<replica::ReplicaReadHandler>(*F, RC);
    Router = std::make_unique<replica::FailoverHandler>(Role, *Reader);
    ClientSrv = std::make_unique<net::NetServer>(Loop, Sig, *Router);
    std::string Err;
    Started = ClientSrv->start(&Err);
    EXPECT_TRUE(Started) << Err;
    Loop.start();
  }

  ~Node() {
    F->disconnect();
    Loop.stop();
    if (Svc)
      Svc->shutdown();
  }

  std::string clientAddr() const {
    return "127.0.0.1:" + std::to_string(ClientSrv->port());
  }

  /// The failover state machine's install step plus the role flip: runs
  /// from the admin verb (loop thread) or directly from a test thread.
  service::Response promote(uint64_t NewEpoch) {
    service::Response R;
    if (Role.writable()) {
      R.Error = "already the leader";
      return R;
    }
    if (Lead) {
      // A demoted ex-leader's divergent suffix is not replayable; such a
      // node rejoins as a fresh follower (DESIGN.md §15), it does not
      // re-promote in place.
      R.Error = "demoted ex-leader: rejoin as a follower first";
      return R;
    }
    auto NewStore = std::make_unique<service::DocumentStore>(Sig);
    auto NewLog = std::make_unique<replica::ReplicationLog>(
        *NewStore, replica::ReplicationLog::Config{1024});
    replica::PromotionResult PR =
        replica::promoteFollower(*F, *NewStore, &Prov, *NewLog, NewEpoch);
    if (!PR.Ok) {
      R.Error = PR.Error;
      return R;
    }
    Store = std::move(NewStore);
    Log = std::move(NewLog);

    replica::Leader::Config LC;
    LC.Epoch = NewEpoch;
    LC.OnFenced = [this](uint64_t) { Role.demote(std::string()); };
    Lead = std::make_unique<replica::Leader>(Loop, *Log, LC);
    std::string Err;
    if (!Lead->start(&Err)) {
      R.Error = "promotion failed to start the leader endpoint: " + Err;
      return R;
    }

    service::ServiceConfig SC;
    SC.Workers = 2;
    Svc = std::make_unique<service::DiffService>(*Store, SC);
    Svc->setStatsAugmenter(
        [this] { return "\"replica\":" + Lead->replicaJson(); });
    net::ServiceHandler::Config WC;
    WC.Role = &Role;
    WC.OnPromote = [this](uint64_t E) { return promote(E); };
    WC.OnDemote = [this](std::string Addr) { return demote(std::move(Addr)); };
    Writer = std::make_unique<net::ServiceHandler>(*Svc, WC);
    Router->setWriter(Writer.get());
    Role.promote(NewEpoch);

    R.Ok = true;
    R.Version = PR.Docs;
    R.Payload = "promoted to epoch " + std::to_string(NewEpoch) + " (" +
                std::to_string(PR.Docs) + " docs, seq " +
                std::to_string(PR.LastSeq) + ")";
    return R;
  }

  service::Response demote(std::string LeaderAddr) {
    Role.demote(std::move(LeaderAddr));
    service::Response R;
    R.Ok = true;
    R.Payload = "demoted";
    return R;
  }
};

/// A bare follower on its own loop (probe/peer role in the tests).
struct Probe {
  net::EventLoop Loop;
  std::unique_ptr<replica::Follower> F;

  explicit Probe(const SignatureTable &Sig,
                 replica::Follower::Config C = replica::Follower::Config()) {
    Loop.start();
    F = std::make_unique<replica::Follower>(Loop, Sig, C);
  }
  ~Probe() {
    F->disconnect();
    Loop.stop();
  }
};

/// Keeps the follower of \p B connected to the leader of \p A (the link
/// may die under injected kills) until it has applied the full stream.
::testing::AssertionResult ensureCaughtUp(Node &A, Node &B,
                                          int TimeoutMs = 30000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  std::string Err;
  while (std::chrono::steady_clock::now() < Deadline) {
    if (B.F->caughtUp() && B.F->lastSeq() == A.Log->currentSeq())
      return ::testing::AssertionSuccess();
    if (!B.F->connected())
      B.F->connectTo("127.0.0.1", A.Lead->port(), &Err);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return ::testing::AssertionFailure()
         << "follower never caught up: last_seq=" << B.F->lastSeq()
         << " leader_seq=" << A.Log->currentSeq()
         << " connected=" << B.F->connected() << " last_err=" << Err;
}

/// Byte-for-byte convergence of a follower against a store.
::testing::AssertionResult convergedWith(service::DocumentStore &Store,
                                         replica::Follower &F,
                                         uint64_t NumDocs) {
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    service::DocumentSnapshot S = Store.snapshot(Doc);
    if (!S.Ok) {
      if (F.contains(Doc))
        return ::testing::AssertionFailure()
               << "doc " << Doc << " absent on the leader but present on "
               << "the follower";
      continue;
    }
    replica::Follower::ReadResult RR = F.read(Doc);
    if (!RR.Ok)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " unreadable on the follower: " << RR.Error;
    if (RR.Version != S.Version)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " version " << RR.Version << " != leader "
             << S.Version;
    if (RR.UriText != S.UriText)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " diverged:\n  leader:   " << S.UriText
             << "\n  follower: " << RR.UriText;
    if (RR.DigestHex != Sha256::hash(S.UriText).toHex())
      return ::testing::AssertionFailure() << "doc " << Doc
                                           << " digest mismatch";
  }
  return ::testing::AssertionSuccess();
}

/// Seeded open/submit pressure against a store (no erases or rollbacks,
/// so committed-prefix comparisons stay version-aligned).
class StoreDriver {
public:
  StoreDriver(const SignatureTable &Sig, service::DocumentStore &Store,
              uint64_t Seed, uint64_t NumDocs)
      : Sig(Sig), Store(Store), Ctx(Sig), R(Seed), NumDocs(NumDocs) {}

  void step() {
    uint64_t Doc = 1 + R.below(NumDocs);
    corpus::JsonGenOptions Opts;
    Opts.MaxDepth = 3;
    Opts.MaxFanout = 3;
    Tree *T = corpus::generateJson(Ctx, R, Opts);
    ASSERT_NE(T, nullptr);
    std::string Blob = persist::encodeTree(Sig, T);
    service::StoreResult SR = Store.snapshot(Doc).Ok
                                  ? Store.submit(Doc, blobBuilder(Sig, Blob))
                                  : Store.open(Doc, blobBuilder(Sig, Blob));
    ASSERT_TRUE(SR.Ok) << SR.Error;
  }

  uint64_t numDocs() const { return NumDocs; }

private:
  const SignatureTable &Sig;
  service::DocumentStore &Store;
  TreeContext Ctx;
  Rng R;
  uint64_t NumDocs;
};

/// Asserts the promoted store holds a committed prefix of the old
/// leader's per-document history: for every promoted doc, rolling the
/// old leader's copy back to the promoted version reproduces the same
/// URI rendering and digest. Mutates \p OldStore (the old leader is done
/// serving).
void assertCommittedPrefix(service::DocumentStore &OldStore,
                           service::DocumentStore &Promoted,
                           uint64_t NumDocs) {
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    service::DocumentSnapshot P = Promoted.snapshot(Doc);
    service::DocumentSnapshot L = OldStore.snapshot(Doc);
    if (!P.Ok) {
      // The doc was opened after the replication cut: absent from the
      // prefix, which is fine. (Submit-only workloads never erase.)
      continue;
    }
    ASSERT_TRUE(L.Ok) << "doc " << Doc << " promoted but unknown to the old "
                      << "leader";
    ASSERT_LE(P.Version, L.Version) << "doc " << Doc;
    while (L.Version > P.Version) {
      service::StoreResult RB = OldStore.rollback(Doc);
      ASSERT_TRUE(RB.Ok) << "doc " << Doc << ": " << RB.Error;
      L = OldStore.snapshot(Doc);
      ASSERT_TRUE(L.Ok);
    }
    EXPECT_EQ(P.UriText, L.UriText) << "doc " << Doc << " at version "
                                    << P.Version;
    EXPECT_EQ(Sha256::hash(P.UriText).toHex(), Sha256::hash(L.UriText).toHex())
        << "doc " << Doc;
  }
}

uint64_t mixSeed(uint64_t Base, uint64_t I) {
  return Base + I * 0x9e3779b97f4a7c15ULL;
}

//===----------------------------------------------------------------------===//
// Blocking raw test client (trimmed copy of net_test's).
//===----------------------------------------------------------------------===//

class TcpClient {
public:
  TcpClient() = default;
  ~TcpClient() { closeFd(); }
  TcpClient(const TcpClient &) = delete;
  TcpClient &operator=(const TcpClient &) = delete;

  bool connect(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in A{};
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
      closeFd();
      return false;
    }
    return true;
  }

  void closeFd() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool sendAll(std::string_view Bytes) {
    while (!Bytes.empty()) {
      ssize_t N = ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Bytes.remove_prefix(static_cast<size_t>(N));
    }
    return true;
  }

  bool fill(int TimeoutMs) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, TimeoutMs);
    if (R <= 0)
      return false;
    char Tmp[4096];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0)
      return false;
    if (N == 0) {
      SawEof = true;
      return false;
    }
    Buf.append(Tmp, static_cast<size_t>(N));
    return true;
  }

  bool readLine(std::string &Line, int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || !fill(Left))
        return false;
    }
  }

  /// Reads one framed textual response up to (excluding) the "." line.
  bool readTextResponse(std::vector<std::string> &Lines,
                        int TimeoutMs = 10000) {
    Lines.clear();
    std::string Line;
    for (;;) {
      if (!readLine(Line, TimeoutMs))
        return false;
      if (Line == ".")
        return true;
      Lines.push_back(Line);
    }
  }

  bool readFrame(net::FrameHeader &H, std::string &Payload,
                 int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      net::FramePeek P = net::peekFrame(Buf, net::MaxBinaryFrameBytes, H);
      if (P == net::FramePeek::Ok) {
        Payload = Buf.substr(net::FrameHeaderBytes, H.Len);
        Buf.erase(0, net::FrameHeaderBytes + H.Len);
        return true;
      }
      if (P == net::FramePeek::TooLarge)
        return false;
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || !fill(Left))
        return false;
    }
  }

  bool readBinResponse(net::BinResponse &R, int TimeoutMs = 10000) {
    net::FrameHeader H;
    std::string Payload;
    if (!readFrame(H, Payload, TimeoutMs))
      return false;
    if (H.Magic != net::ClientRespMagic)
      return false;
    return net::decodeBinResponse(H.Type, Payload, R);
  }

  bool waitEof(int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    while (!SawEof) {
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0)
        return false;
      if (!fill(Left) && !SawEof)
        return false;
    }
    return true;
  }

  bool sawEof() const { return SawEof; }

private:
  int Fd = -1;
  std::string Buf;
  bool SawEof = false;
};

/// One textual request/response; returns the status line ("" on error).
std::string roundTrip(TcpClient &C, const std::string &Line) {
  if (!C.sendAll(Line + "\n"))
    return std::string();
  std::vector<std::string> Lines;
  if (!C.readTextResponse(Lines) || Lines.empty())
    return std::string();
  return Lines.front();
}

std::string binRequest(net::BinVerb Verb, std::string_view Payload) {
  std::string Out;
  net::appendFrame(Out, net::ClientReqMagic, static_cast<uint8_t>(Verb),
                   Payload);
  return Out;
}

//===----------------------------------------------------------------------===//
// Promotion basics: an empty follower boots into a writable leader, and
// a caught-up follower promotes into the exact replicated state.
//===----------------------------------------------------------------------===//

TEST(Failover, EmptyFollowerPromotesToWritableLeader) {
  SignatureTable Sig = json::makeJsonSignature();
  Node A(Sig);
  ASSERT_TRUE(A.Started);

  service::Response R = A.promote(1);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(A.Role.writable());
  EXPECT_EQ(A.Role.view().Epoch, 1u);

  // Promoting a leader again is refused.
  EXPECT_FALSE(A.promote(2).Ok);

  // The promoted (empty) store serves writes and replicates them.
  StoreDriver D(Sig, *A.Store, 7, 2);
  for (int I = 0; I != 6; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  EXPECT_GT(A.Log->currentSeq(), 0u);

  Probe P(Sig);
  ASSERT_TRUE(P.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(waitUntil(
      [&] { return P.F->caughtUp() && P.F->lastSeq() == A.Log->currentSeq(); }));
  EXPECT_TRUE(convergedWith(*A.Store, *P.F, D.numDocs()));
}

TEST(Failover, PromotedFollowerMatchesCommittedPrefixAndServesWrites) {
  uint64_t Seed = tests::testSeed(0x5eedf001);
  SEED_TRACE(Seed);
  SignatureTable Sig = json::makeJsonSignature();

  Node A(Sig);
  ASSERT_TRUE(A.Started);
  ASSERT_TRUE(A.promote(1).Ok);
  Node B(Sig);
  ASSERT_TRUE(B.Started);

  StoreDriver D(Sig, *A.Store, Seed, 3);
  for (int I = 0; I != 20; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(B.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(ensureCaughtUp(A, B));

  // Cut the link, push writes the follower never sees, then promote: the
  // promoted state must be the committed prefix at the cut, not a torn
  // mixture.
  B.F->disconnect();
  ASSERT_TRUE(waitUntil([&] { return !B.F->connected(); }));
  std::vector<service::DocumentSnapshot> AtCut(D.numDocs() + 1);
  for (uint64_t Doc = 1; Doc <= D.numDocs(); ++Doc)
    AtCut[Doc] = A.Store->snapshot(Doc);
  for (int I = 0; I != 6; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }

  service::Response R = B.promote(2);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(B.Role.writable());

  // Exactly the cut: every doc byte-identical to the pre-cut snapshot.
  for (uint64_t Doc = 1; Doc <= D.numDocs(); ++Doc) {
    if (!AtCut[Doc].Ok)
      continue;
    service::DocumentSnapshot P = B.Store->snapshot(Doc);
    ASSERT_TRUE(P.Ok) << "doc " << Doc << " lost in promotion";
    EXPECT_EQ(P.Version, AtCut[Doc].Version) << "doc " << Doc;
    EXPECT_EQ(P.UriText, AtCut[Doc].UriText) << "doc " << Doc;
  }
  assertCommittedPrefix(*A.Store, *B.Store, D.numDocs());

  // The promoted leader serves writes, continues the per-doc chains, and
  // replicates to a fresh follower.
  StoreDriver D2(Sig, *B.Store, Seed ^ 0x77, 3);
  for (int I = 0; I != 8; ++I) {
    D2.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  Probe P(Sig);
  ASSERT_TRUE(P.F->connectTo("127.0.0.1", B.Lead->port()));
  ASSERT_TRUE(waitUntil(
      [&] { return P.F->caughtUp() && P.F->lastSeq() == B.Log->currentSeq(); }));
  EXPECT_TRUE(convergedWith(*B.Store, *P.F, 3));
}

//===----------------------------------------------------------------------===//
// The admin verbs over the wire, and not_leader redirect hints
//===----------------------------------------------------------------------===//

TEST(Failover, PromoteVerbOverWireAndNotLeaderHints) {
  SignatureTable Sig = makeExpSignature();
  Node A(Sig);
  Node B(Sig);
  ASSERT_TRUE(A.Started && B.Started);
  ASSERT_TRUE(A.promote(1).Ok);
  B.Role.setLeaderAddr(A.clientAddr());

  TcpClient CA;
  ASSERT_TRUE(CA.connect(A.ClientSrv->port()));
  ASSERT_EQ(roundTrip(CA, "open 1 (Add (a) (b))").substr(0, 2), "ok");
  ASSERT_TRUE(B.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(ensureCaughtUp(A, B));

  // A write to the follower: not_leader with the leader address and a
  // retry pacing hint.
  TcpClient CB;
  ASSERT_TRUE(CB.connect(B.ClientSrv->port()));
  std::string Err = roundTrip(CB, "submit 1 (Add (b) (a))");
  EXPECT_EQ(Err.substr(0, 4), "err ") << Err;
  EXPECT_NE(Err.find(" code=not_leader"), std::string::npos) << Err;
  EXPECT_NE(Err.find(" retry_after_ms="), std::string::npos) << Err;
  EXPECT_NE(Err.find(" leader=" + A.clientAddr()), std::string::npos) << Err;

  // Reads on the follower still work (verb gating: get is not a write).
  EXPECT_EQ(roundTrip(CB, "get 1").substr(0, 2), "ok");

  // The resilient client follows the hint instead of failing.
  client::ResilientClient::Config CC;
  CC.Endpoints = {B.clientAddr()};
  CC.JitterSeed = 42;
  CC.BackoffBaseMs = 1;
  CC.BackoffCapMs = 10;
  client::ResilientClient RC(CC);
  client::ResilientClient::Result R = RC.submit(1, "(Mul (a) (b))");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(RC.clientStats().Redirects, 1u);
  EXPECT_EQ(RC.currentEndpoint(), A.clientAddr());

  // Malformed admin verbs are clean parse errors, connection alive.
  EXPECT_EQ(roundTrip(CB, "promote 0").substr(0, 4), "err ");
  EXPECT_EQ(roundTrip(CB, "promote").substr(0, 4), "err ");

  // promote over the wire flips the node; the same port then serves the
  // full leader protocol.
  ASSERT_TRUE(ensureCaughtUp(A, B));
  std::string PromoteResp = roundTrip(CB, "promote 2");
  ASSERT_EQ(PromoteResp.substr(0, 2), "ok") << PromoteResp;
  ASSERT_TRUE(waitUntil([&] { return B.Role.writable(); }));
  EXPECT_EQ(roundTrip(CB, "submit 1 (Add (c) (c))").substr(0, 2), "ok");
  EXPECT_EQ(roundTrip(CB, "promote 3").substr(0, 4), "err ");

  // demote with an address updates the redirect hint on the old leader;
  // a client pointed only at it chases the hint to the new leader.
  EXPECT_EQ(roundTrip(CA, "demote " + B.clientAddr()).substr(0, 2), "ok");
  ASSERT_TRUE(waitUntil([&] { return !A.Role.writable(); }));
  std::string Fenced = roundTrip(CA, "submit 1 (Add (d) (d))");
  EXPECT_NE(Fenced.find(" code=not_leader"), std::string::npos) << Fenced;
  EXPECT_NE(Fenced.find(" leader=" + B.clientAddr()), std::string::npos)
      << Fenced;

  client::ResilientClient::Config DC;
  DC.Endpoints = {A.clientAddr()};
  DC.JitterSeed = 43;
  DC.BackoffBaseMs = 1;
  DC.BackoffCapMs = 10;
  client::ResilientClient RD(DC);
  client::ResilientClient::Result OR = RD.open(9, "(d)");
  ASSERT_TRUE(OR.Ok) << OR.Error;
  EXPECT_GE(RD.clientStats().Redirects, 1u);
  EXPECT_EQ(RD.currentEndpoint(), B.clientAddr());
}

//===----------------------------------------------------------------------===//
// Stale-leader fencing end to end
//===----------------------------------------------------------------------===//

TEST(Failover, StaleLeaderIsFencedAndRejoinsAsFollower) {
  uint64_t Seed = tests::testSeed(0x5eedf002);
  SEED_TRACE(Seed);
  SignatureTable Sig = json::makeJsonSignature();

  Node A(Sig);
  Node B(Sig);
  ASSERT_TRUE(A.Started && B.Started);
  ASSERT_TRUE(A.promote(1).Ok);

  StoreDriver D(Sig, *A.Store, Seed, 2);
  for (int I = 0; I != 10; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(B.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(ensureCaughtUp(A, B));
  ASSERT_TRUE(B.promote(2).Ok);

  // A follower that has seen epoch 2 knocks on the old leader: the
  // leader self-fences (demotes its role) and drops the connection.
  Probe P(Sig, [] {
    replica::Follower::Config C;
    C.MaxEpochSeen = 2;
    return C;
  }());
  std::string Err;
  EXPECT_FALSE(P.F->connectTo("127.0.0.1", A.Lead->port(), &Err));
  ASSERT_TRUE(waitUntil([&] { return !A.Role.writable(); }));
  EXPECT_GE(A.Lead->stats().FencedHellos, 1u);

  // Fenced: the old leader's client port rejects writes.
  TcpClient CA;
  ASSERT_TRUE(CA.connect(A.ClientSrv->port()));
  std::string Resp = roundTrip(CA, "rollback 1");
  EXPECT_NE(Resp.find(" code=not_leader"), std::string::npos) << Resp;

  // The divergent ex-leader rejoins through fresh follower state and
  // converges on the promoted leader's stream.
  StoreDriver D2(Sig, *B.Store, Seed ^ 0x3131, 2);
  for (int I = 0; I != 5; ++I) {
    D2.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(A.F->connectTo("127.0.0.1", B.Lead->port()));
  ASSERT_TRUE(waitUntil(
      [&] { return A.F->caughtUp() && A.F->lastSeq() == B.Log->currentSeq(); }));
  EXPECT_TRUE(convergedWith(*B.Store, *A.F, 2));
  EXPECT_EQ(A.F->stats().MaxEpochSeen, 2u);
}

//===----------------------------------------------------------------------===//
// Stats: the "replica" section
//===----------------------------------------------------------------------===//

TEST(Failover, StatsReportReplicaRoleEpochAndFollowerLag) {
  SignatureTable Sig = json::makeJsonSignature();
  Node A(Sig);
  Node B(Sig);
  ASSERT_TRUE(A.Started && B.Started);
  ASSERT_TRUE(A.promote(3).Ok);

  StoreDriver D(Sig, *A.Store, 11, 2);
  for (int I = 0; I != 6; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(B.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(ensureCaughtUp(A, B));

  // The ack stream drains the lag to zero once the follower applied
  // everything.
  ASSERT_TRUE(waitUntil([&] {
    std::vector<replica::Leader::FollowerLag> L = A.Lead->followerLags();
    return L.size() == 1 && L[0].AckedSeq == A.Log->currentSeq() &&
           L[0].Lag == 0;
  }));

  client::ResilientClient::Config CC;
  CC.Endpoints = {A.clientAddr()};
  CC.JitterSeed = 5;
  client::ResilientClient RC(CC);
  client::ResilientClient::Result S = RC.stats();
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_NE(S.Payload.find("\"replica\":{\"role\":\"leader\",\"epoch\":3"),
            std::string::npos)
      << S.Payload;
  EXPECT_NE(S.Payload.find("\"followers\":[{\"conn\":"), std::string::npos)
      << S.Payload;
  EXPECT_NE(S.Payload.find("\"lag\":0"), std::string::npos) << S.Payload;

  // The follower's stats carry its role, epoch, and applied seq.
  TcpClient CB;
  ASSERT_TRUE(CB.connect(B.ClientSrv->port()));
  ASSERT_TRUE(CB.sendAll("stats\n"));
  std::vector<std::string> Lines;
  ASSERT_TRUE(CB.readTextResponse(Lines));
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_NE(Lines[1].find("\"role\":\"follower\""), std::string::npos)
      << Lines[1];
  EXPECT_NE(Lines[1].find("\"last_seq\":"), std::string::npos) << Lines[1];
}

//===----------------------------------------------------------------------===//
// Exactly-once submits through the version-CAS guard
//===----------------------------------------------------------------------===//

TEST(ResilientClient, RetriedSubmitDedupsThroughVersionCas) {
  SignatureTable Sig = makeExpSignature();
  Node A(Sig);
  ASSERT_TRUE(A.Started);
  ASSERT_TRUE(A.promote(1).Ok);

  client::ResilientClient::Config CC;
  CC.Endpoints = {A.clientAddr()};
  CC.JitterSeed = 6;
  client::ResilientClient RC(CC);
  ASSERT_TRUE(RC.open(1, "(Add (a) (b))").Ok);
  client::ResilientClient::Result R1 = RC.submit(1, "(Add (b) (a))");
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Version, 1u);

  // Replay the lost-ack scenario by hand: the client's "first copy"
  // applies out of band, then the client retries with its stale cached
  // version. The CAS guard bounces the retry; the client recognises
  // version == expect+1 as its own write and reports success -- and the
  // store's version proves nothing applied twice.
  TcpClient Ghost;
  ASSERT_TRUE(Ghost.connect(A.ClientSrv->port()));
  ASSERT_EQ(roundTrip(Ghost, "submit 1 expect=1 (Mul (a) (b))").substr(0, 2),
            "ok");

  client::ResilientClient::Result R2 = RC.submit(1, "(Mul (a) (b))");
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_TRUE(R2.Deduped);
  EXPECT_EQ(R2.Version, 2u);
  EXPECT_EQ(RC.clientStats().CasDedups, 1u);
  EXPECT_EQ(A.Store->snapshot(1).Version, 2u);

  // A genuinely concurrent writer (version jumped past expect+1) is NOT
  // claimed as a dedup: the conflict surfaces as a clean cas_mismatch.
  ASSERT_EQ(roundTrip(Ghost, "submit 1 expect=2 (Add (c) (c))").substr(0, 2),
            "ok");
  ASSERT_EQ(roundTrip(Ghost, "submit 1 expect=3 (Add (d) (d))").substr(0, 2),
            "ok");
  client::ResilientClient::Result R3 = RC.submit(1, "(d)");
  EXPECT_FALSE(R3.Ok);
  EXPECT_EQ(R3.Code, "cas_mismatch");
  EXPECT_FALSE(R3.Deduped);
  EXPECT_EQ(A.Store->snapshot(1).Version, 4u);
}

TEST(ResilientClient, TimeoutRetryThroughPartitionAppliesExactlyOnce) {
  SignatureTable Sig = makeExpSignature();
  Node A(Sig);
  ASSERT_TRUE(A.Started);
  ASSERT_TRUE(A.promote(1).Ok);

  client::ResilientClient::Config CC;
  CC.Endpoints = {A.clientAddr()};
  CC.RequestTimeoutMs = 150;
  CC.MaxAttempts = 60;
  CC.BackoffBaseMs = 2;
  CC.BackoffCapMs = 30;
  CC.JitterSeed = 8;
  client::ResilientClient RC(CC);
  ASSERT_TRUE(RC.open(1, "(Add (a) (b))").Ok);

  // Partition the server's outbound side: requests still arrive and
  // apply, the acks vanish -- the classic lost-response window.
  A.Env.setPartitioned(true);
  std::thread Healer([&] {
    // Heal only after the first copy provably applied AND the client's
    // first attempt has certainly timed out -- healing sooner would let
    // the held response flush within the attempt's deadline, turning
    // this into a plain slow success.
    bool Applied = waitUntil(
        [&] { return A.Store->snapshot(1).Version == 1; }, 10000);
    EXPECT_TRUE(Applied);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    A.Env.setPartitioned(false);
  });
  client::ResilientClient::Result R = RC.submit(1, "(Add (b) (a))");
  Healer.join();

  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Deduped);
  EXPECT_GE(R.Attempts, 2u);
  EXPECT_GE(RC.clientStats().Timeouts, 1u);
  EXPECT_EQ(R.Version, 1u);
  // Exactly once: the store holds version 1, not one per attempt.
  EXPECT_EQ(A.Store->snapshot(1).Version, 1u);
  EXPECT_GT(A.Env.stats().HeldSends, 0u);
}

//===----------------------------------------------------------------------===//
// Decoder fuzz: truncated and duplicated TLVs must never crash
//===----------------------------------------------------------------------===//

TEST(FrameFuzz, ReplicaDecodersSurviveTruncationDuplicationAndFlips) {
  uint64_t Seed = tests::testSeed(0x5eedf003);
  SEED_TRACE(Seed);
  Rng R(Seed);

  // One valid specimen of every replication frame.
  replica::FollowerHello FH;
  FH.LastSeq = 123456;
  FH.MaxEpochSeen = 7;
  replica::LeaderHello LH;
  LH.Epoch = 9;
  LH.CurrentSeq = 55;
  replica::RecordMsg Rec;
  Rec.Seq = 42;
  Rec.Doc = 3;
  Rec.Incarnation = 2;
  Rec.Op = replica::ReplOp::Submit;
  Rec.Version = 17;
  Rec.Blob = std::string("\x01\x02\x03\x04script-bytes", 16);
  Rec.Author = "alice";
  replica::DocSnapshotMsg Snap;
  Snap.Doc = 3;
  Snap.Incarnation = 2;
  Snap.Version = 17;
  Snap.Seq = 42;
  Snap.Blob = "tree-blob";
  Snap.ProvBlob = "prov-blob";
  replica::CatchupDoneMsg CD;
  CD.Seq = 42;
  CD.SnapshotMode = true;
  replica::ResyncReqMsg RR;
  RR.Doc = 3;
  replica::AckMsg Ack;
  Ack.Seq = 42;

  struct Specimen {
    const char *Name;
    std::string Frame; ///< full frame; payload starts at FrameHeaderBytes
    std::function<bool(std::string_view)> Decode;
  };
  std::vector<Specimen> Specimens = {
      {"follower_hello", replica::encodeFollowerHello(FH),
       [](std::string_view P) {
         replica::FollowerHello M;
         return replica::decodeFollowerHello(P, M);
       }},
      {"leader_hello", replica::encodeLeaderHello(LH),
       [](std::string_view P) {
         replica::LeaderHello M;
         return replica::decodeLeaderHello(P, M);
       }},
      {"record", replica::encodeRecord(Rec),
       [](std::string_view P) {
         replica::RecordMsg M;
         return replica::decodeRecord(P, M);
       }},
      {"doc_snapshot", replica::encodeDocSnapshot(Snap),
       [](std::string_view P) {
         replica::DocSnapshotMsg M;
         return replica::decodeDocSnapshot(P, M);
       }},
      {"catchup_done", replica::encodeCatchupDone(CD),
       [](std::string_view P) {
         replica::CatchupDoneMsg M;
         return replica::decodeCatchupDone(P, M);
       }},
      {"resync_req", replica::encodeResyncReq(RR),
       [](std::string_view P) {
         replica::ResyncReqMsg M;
         return replica::decodeResyncReq(P, M);
       }},
      {"ack", replica::encodeAck(Ack),
       [](std::string_view P) {
         replica::AckMsg M;
         return replica::decodeAck(P, M);
       }},
  };

  for (const Specimen &S : Specimens) {
    SCOPED_TRACE(S.Name);
    ASSERT_GT(S.Frame.size(), net::FrameHeaderBytes);
    std::string Payload = S.Frame.substr(net::FrameHeaderBytes);

    // The pristine payload decodes; strictness rejects a duplicated one
    // (trailing bytes) and the empty one.
    EXPECT_TRUE(S.Decode(Payload));
    EXPECT_FALSE(S.Decode(Payload + Payload));
    EXPECT_FALSE(S.Decode(std::string_view()));

    // Every truncation: must return (false or true), never crash or read
    // out of bounds (ASan is watching).
    for (size_t Len = 0; Len < Payload.size(); ++Len)
      S.Decode(std::string_view(Payload.data(), Len));

    // Seeded byte flips and splices.
    for (int I = 0; I != 200; ++I) {
      std::string Mut = Payload;
      size_t Flips = 1 + R.below(4);
      for (size_t K = 0; K != Flips; ++K)
        Mut[R.below(Mut.size())] ^= static_cast<char>(1 + R.below(255));
      if (R.chance(30))
        Mut += Payload.substr(R.below(Payload.size()));
      if (R.chance(30) && Mut.size() > 1)
        Mut.resize(1 + R.below(Mut.size() - 1));
      S.Decode(Mut);
    }
  }

  // The binary client-response decoder: ok and every err shape,
  // including the optional trailing leader-address TLV.
  service::Response Ok;
  Ok.Ok = true;
  Ok.Version = 5;
  service::Response NotLeader;
  NotLeader.Error = "not the leader";
  NotLeader.Code = service::ErrCode::NotLeader;
  NotLeader.RetryAfterMs = 50;
  NotLeader.LeaderAddr = "127.0.0.1:4242";
  service::Response Cas;
  Cas.Error = "expected version 3, document is at 4";
  Cas.Code = service::ErrCode::CasMismatch;
  Cas.Version = 4;
  for (const service::Response *Resp : {&Ok, &NotLeader, &Cas}) {
    std::string Frame = net::encodeBinResponse(*Resp, std::string_view());
    ASSERT_GE(Frame.size(), net::FrameHeaderBytes);
    uint8_t Status = static_cast<uint8_t>(Frame[1]);
    std::string Payload = Frame.substr(net::FrameHeaderBytes);
    net::BinResponse BR;
    EXPECT_TRUE(net::decodeBinResponse(Status, Payload, BR));
    for (size_t Len = 0; Len < Payload.size(); ++Len) {
      net::BinResponse T;
      net::decodeBinResponse(Status, std::string_view(Payload.data(), Len), T);
    }
    for (int I = 0; I != 200; ++I) {
      std::string Mut = Payload;
      if (!Mut.empty())
        Mut[R.below(Mut.size())] ^= static_cast<char>(1 + R.below(255));
      if (R.chance(40))
        Mut += Mut;
      net::BinResponse T;
      net::decodeBinResponse(Status, Mut, T);
    }
  }
  // The round-trip preserves the failover hints.
  std::string Frame = net::encodeBinResponse(NotLeader, std::string_view());
  net::BinResponse BR;
  ASSERT_TRUE(net::decodeBinResponse(static_cast<uint8_t>(Frame[1]),
                                     Frame.substr(net::FrameHeaderBytes), BR));
  EXPECT_EQ(BR.Code, service::ErrCode::NotLeader);
  EXPECT_EQ(BR.RetryAfterMs, 50u);
  EXPECT_EQ(BR.LeaderAddr, "127.0.0.1:4242");
}

TEST(FrameFuzz, MalformedPayloadsOverSocketsAnswerMalformedFrame) {
  uint64_t Seed = tests::testSeed(0x5eedf004);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  Node A(Sig);
  ASSERT_TRUE(A.Started);
  ASSERT_TRUE(A.promote(1).Ok);

  TcpClient C;
  ASSERT_TRUE(C.connect(A.ClientSrv->port()));
  ASSERT_EQ(roundTrip(C, "open 1 (Add (a) (b))").substr(0, 2), "ok");

  auto ExpectMalformed = [&](std::string_view Payload, net::BinVerb Verb) {
    ASSERT_TRUE(C.sendAll(binRequest(Verb, Payload)));
    net::BinResponse BR;
    ASSERT_TRUE(C.readBinResponse(BR));
    EXPECT_FALSE(BR.Ok);
    EXPECT_EQ(BR.Code, service::ErrCode::MalformedFrame) << BR.Error;
  };

  // Truncated varint: the doc id never completes.
  ExpectMalformed(std::string_view("\x80", 1), net::BinVerb::Get);
  ExpectMalformed(std::string_view("\xff\xff\x80", 3), net::BinVerb::Get);
  // Duplicated TLV: a second doc-id payload rides behind the first.
  {
    std::string P;
    persist::putVarint(P, 1);
    std::string Dup = P + P;
    ExpectMalformed(Dup, net::BinVerb::Get);
  }
  // An author TLV whose length points past the end of the frame.
  {
    std::string P;
    persist::putVarint(P, 1);
    persist::putVarint(P, 1000); // author length >> remaining bytes
    P += "ab";
    ExpectMalformed(P, net::BinVerb::Open);
  }

  // The connection answered every malformed payload and is still alive.
  EXPECT_EQ(roundTrip(C, "get 1").substr(0, 2), "ok");

  // Seeded hammer: random payloads on every verb answer *something*
  // (typed error or success) without killing the connection or process.
  // Every verb except Quit, whose contract is to close the connection.
  static const uint8_t HammerVerbs[] = {1, 2, 3, 4, 5, 6, 8, 9};
  for (int I = 0; I != 200; ++I) {
    uint8_t Verb = HammerVerbs[R.below(8)];
    std::string P;
    size_t Len = R.below(48);
    for (size_t K = 0; K != Len; ++K)
      P += static_cast<char>(R.below(256));
    ASSERT_TRUE(C.sendAll(binRequest(static_cast<net::BinVerb>(Verb), P)));
    net::BinResponse BR;
    ASSERT_TRUE(C.readBinResponse(BR)) << "iteration " << I;
  }
  EXPECT_EQ(roundTrip(C, "get 1").substr(0, 2), "ok");

  // The replication port survives garbage too: a framed-but-bogus hello
  // and raw noise just cost the sender its connection.
  {
    TcpClient G;
    ASSERT_TRUE(G.connect(A.Lead->port()));
    std::string Noise;
    net::appendFrame(Noise, net::ReplMagic,
                     static_cast<uint8_t>(net::ReplFrame::FollowerHello),
                     std::string_view("\x80\x80", 2));
    for (int I = 0; I != 64; ++I)
      Noise += static_cast<char>(R.below(256));
    ASSERT_TRUE(G.sendAll(Noise));
    EXPECT_TRUE(G.waitEof());
  }
  // ...and a real follower still syncs afterwards.
  Probe P(Sig);
  ASSERT_TRUE(P.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(waitUntil(
      [&] { return P.F->caughtUp() && P.F->lastSeq() == A.Log->currentSeq(); }));
}

//===----------------------------------------------------------------------===//
// Chaos: seeded fault schedules, in-process promotion edition
//===----------------------------------------------------------------------===//

/// One seeded schedule: leader under a seeded fault env, follower
/// catching up through it, a durability point, an at-risk suffix with a
/// mid-stream cut, promotion, and the prefix/durability/continuation
/// assertions.
void runPromotionSchedule(const SignatureTable &Sig, uint64_t SchedSeed) {
  SEED_TRACE(SchedSeed);
  Rng R(SchedSeed);

  net::FaultyNetEnv::Config EC;
  EC.Seed = SchedSeed;
  EC.ShortWriteProb = 0.2 * static_cast<double>(R.below(3)); // 0 / .2 / .4
  EC.DelayProb = 0.25 * static_cast<double>(R.below(2));     // 0 / .25
  EC.MaxDelayMs = 2;
  if (R.chance(30)) {
    EC.KillProb = 0.25;
    EC.KillAfterMax = 1 + R.below(4096);
  }

  Node A(Sig, EC);
  ASSERT_TRUE(A.Started);
  ASSERT_TRUE(A.promote(1).Ok);
  Node B(Sig);
  ASSERT_TRUE(B.Started);

  const uint64_t NumDocs = 2;
  StoreDriver D(Sig, *A.Store, SchedSeed ^ 0xd00d, NumDocs);

  // Pre-connect history (tail replay or snapshot transfer, seed's pick).
  uint64_t Pre = 1 + R.below(6);
  for (uint64_t I = 0; I != Pre; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(ensureCaughtUp(A, B));

  // Live stream under faults, with an optional transient partition.
  uint64_t Live = 2 + R.below(8);
  for (uint64_t I = 0; I != Live; ++I) {
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  if (R.chance(40)) {
    A.Env.setPartitioned(true);
    uint64_t Held = R.below(3);
    for (uint64_t I = 0; I != Held; ++I) {
      D.step();
      if (::testing::Test::HasFatalFailure())
        return;
    }
    A.Env.setPartitioned(false);
  }

  // Durability point: everything committed so far is replicated.
  ASSERT_TRUE(ensureCaughtUp(A, B));
  std::vector<service::DocumentSnapshot> Durable(NumDocs + 1);
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc)
    Durable[Doc] = A.Store->snapshot(Doc);

  // At-risk suffix: writes the follower may or may not see, with the
  // link cut somewhere in the middle.
  uint64_t AtRisk = R.below(4);
  uint64_t CutAfter = R.below(AtRisk + 1);
  for (uint64_t I = 0; I != AtRisk; ++I) {
    if (I == CutAfter)
      B.F->disconnect();
    D.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // Promote. The fence half runs first, so the old leader's stream can
  // never reach this node again.
  service::Response PR = B.promote(2);
  ASSERT_TRUE(PR.Ok) << PR.Error;
  ASSERT_TRUE(B.Role.writable());

  // No durable-acked write lost; promoted state is a committed prefix.
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    if (!Durable[Doc].Ok)
      continue;
    service::DocumentSnapshot P = B.Store->snapshot(Doc);
    ASSERT_TRUE(P.Ok) << "doc " << Doc << " lost across the failover";
    ASSERT_GE(P.Version, Durable[Doc].Version) << "doc " << Doc;
    if (P.Version == Durable[Doc].Version) {
      EXPECT_EQ(P.UriText, Durable[Doc].UriText) << "doc " << Doc;
    }
  }
  assertCommittedPrefix(*A.Store, *B.Store, NumDocs);
  if (::testing::Test::HasFatalFailure())
    return;

  // Continuation: the promoted leader serves writes and replicates.
  if (R.chance(50)) {
    StoreDriver D2(Sig, *B.Store, SchedSeed ^ 0xbeef, NumDocs);
    uint64_t More = 1 + R.below(3);
    for (uint64_t I = 0; I != More; ++I) {
      D2.step();
      if (::testing::Test::HasFatalFailure())
        return;
    }
    Probe P(Sig);
    ASSERT_TRUE(P.F->connectTo("127.0.0.1", B.Lead->port()));
    ASSERT_TRUE(waitUntil([&] {
      return P.F->caughtUp() && P.F->lastSeq() == B.Log->currentSeq();
    }));
    EXPECT_TRUE(convergedWith(*B.Store, *P.F, NumDocs));
  }

  // Fencing: the old leader self-demotes on the first hello that has
  // seen the new epoch.
  if (R.chance(35)) {
    Probe P2(Sig, [] {
      replica::Follower::Config C;
      C.MaxEpochSeen = 2;
      return C;
    }());
    EXPECT_FALSE(P2.F->connectTo("127.0.0.1", A.Lead->port()));
    ASSERT_TRUE(waitUntil([&] { return !A.Role.writable(); }));
    EXPECT_GE(A.Lead->stats().FencedHellos, 1u);
  }
}

TEST(FailoverChaos, SeededPromotionSchedules) {
  uint64_t Seed = tests::testSeed(0x5eedfa11);
  SEED_TRACE(Seed);
  SignatureTable Sig = json::makeJsonSignature();

  uint64_t Total = tests::testIters("TRUEDIFF_FAILOVER_ITERS", 200);
  uint64_t Heavy = std::min<uint64_t>(12, std::max<uint64_t>(1, Total / 16));
  uint64_t Light = Total > Heavy ? Total - Heavy : 1;
  for (uint64_t I = 0; I != Light; ++I) {
    runPromotionSchedule(Sig, mixSeed(Seed, I));
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasFailure()) {
      ADD_FAILURE() << "schedule " << I << " failed (TRUEDIFF_TEST_SEED="
                    << mixSeed(Seed, I) << ")";
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Chaos: full-stack failover over real sockets with the resilient client
//===----------------------------------------------------------------------===//

void runClientFailoverSchedule(const SignatureTable &Sig, uint64_t SchedSeed) {
  SEED_TRACE(SchedSeed);
  Rng R(SchedSeed);

  static const char *Exprs[] = {
      "(Add (a) (b))",  "(Add (b) (a))",       "(Mul (a) (Num 1))",
      "(Mul (Num 2) (b))", "(Add (Mul (a) (b)) (c))", "(d)",
  };
  auto AnyExpr = [&] { return std::string(Exprs[R.below(6)]); };

  net::FaultyNetEnv::Config EC;
  EC.Seed = SchedSeed;
  EC.ShortWriteProb = 0.25;
  EC.DelayProb = 0.2;
  EC.MaxDelayMs = 2;
  Node A(Sig, EC);
  Node B(Sig);
  ASSERT_TRUE(A.Started && B.Started);
  ASSERT_TRUE(A.promote(1).Ok);
  B.Role.setLeaderAddr(A.clientAddr());
  ASSERT_TRUE(B.F->connectTo("127.0.0.1", A.Lead->port()));

  client::ResilientClient::Config CC;
  CC.Endpoints = {A.clientAddr(), B.clientAddr()};
  CC.RequestTimeoutMs = 400;
  CC.MaxAttempts = 25;
  CC.BackoffBaseMs = 2;
  CC.BackoffCapMs = 30;
  CC.JitterSeed = SchedSeed ^ 0x915f77f5a5a5a5a5ULL;
  client::ResilientClient C(CC);

  const uint64_t NumDocs = 2;
  std::vector<uint64_t> Acked(NumDocs + 1, 0);
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    client::ResilientClient::Result O = C.open(Doc, AnyExpr());
    ASSERT_TRUE(O.Ok) << O.Error;
  }
  uint64_t Pre = 3 + R.below(5);
  for (uint64_t I = 0; I != Pre; ++I) {
    uint64_t Doc = 1 + R.below(NumDocs);
    client::ResilientClient::Result S = C.submit(Doc, AnyExpr());
    ASSERT_TRUE(S.Ok) << S.Error;
    Acked[Doc] = S.Version;
  }

  // Durability point, then the leader "dies": a full outbound partition
  // (connections accepted, nothing ever answered -- the cruellest kill).
  ASSERT_TRUE(ensureCaughtUp(A, B));
  std::vector<service::DocumentSnapshot> Durable(NumDocs + 1);
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc)
    Durable[Doc] = A.Store->snapshot(Doc);
  A.Env.setPartitioned(true);

  // An operator (separate admin client) promotes the follower.
  client::ResilientClient::Config AC;
  AC.Endpoints = {B.clientAddr()};
  AC.RequestTimeoutMs = 2000;
  AC.JitterSeed = SchedSeed ^ 0x1111;
  client::ResilientClient Admin(AC);
  client::ResilientClient::Result PR = Admin.request("promote 2", false);
  ASSERT_TRUE(PR.Ok) << PR.Error;
  ASSERT_TRUE(waitUntil([&] { return B.Role.writable(); }));

  // The same client keeps writing: its next submit burns a timeout on
  // the dead leader, rotates, and lands on the promoted one.
  uint64_t Post = 2 + R.below(4);
  for (uint64_t I = 0; I != Post; ++I) {
    uint64_t Doc = 1 + R.below(NumDocs);
    client::ResilientClient::Result S = C.submit(Doc, AnyExpr());
    ASSERT_TRUE(S.Ok) << S.Error << " (code " << S.Code << ")";
    ASSERT_GE(S.Version, Acked[Doc]) << "doc " << Doc << " went backwards";
    Acked[Doc] = S.Version;
  }
  EXPECT_GE(C.clientStats().Timeouts + C.clientStats().ConnectFailures +
                C.clientStats().Redirects,
            1u);

  // Survival invariants: nothing durable-acked lost, nothing applied
  // twice -- the promoted store's version is exactly the last acked one.
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    service::DocumentSnapshot S = B.Store->snapshot(Doc);
    ASSERT_TRUE(S.Ok) << "doc " << Doc << " lost across the failover";
    EXPECT_GE(S.Version, Durable[Doc].Version) << "doc " << Doc;
    EXPECT_EQ(S.Version, Acked[Doc]) << "doc " << Doc;
  }

  // Heal the old leader and fence it; demote points its clients at B.
  A.Env.setPartitioned(false);
  Probe P2(Sig, [] {
    replica::Follower::Config C2;
    C2.MaxEpochSeen = 2;
    return C2;
  }());
  EXPECT_FALSE(P2.F->connectTo("127.0.0.1", A.Lead->port()));
  ASSERT_TRUE(waitUntil([&] { return !A.Role.writable(); }));
  client::ResilientClient::Config DC;
  DC.Endpoints = {A.clientAddr()};
  DC.RequestTimeoutMs = 2000;
  DC.JitterSeed = SchedSeed ^ 0x2222;
  client::ResilientClient AdminA(DC);
  ASSERT_TRUE(AdminA.request("demote " + B.clientAddr(), false).Ok);

  // A client that only knows the old leader follows the hint.
  client::ResilientClient::Config LC;
  LC.Endpoints = {A.clientAddr()};
  LC.RequestTimeoutMs = 1000;
  LC.BackoffBaseMs = 1;
  LC.BackoffCapMs = 10;
  LC.JitterSeed = SchedSeed ^ 0x3333;
  client::ResilientClient Late(LC);
  client::ResilientClient::Result O = Late.open(9, AnyExpr());
  ASSERT_TRUE(O.Ok) << O.Error;
  EXPECT_GE(Late.clientStats().Redirects, 1u);
  EXPECT_EQ(Late.currentEndpoint(), B.clientAddr());

  // Full circle: the fenced ex-leader rejoins as a fresh follower and
  // converges on the promoted stream (doc 9 included).
  ASSERT_TRUE(A.F->connectTo("127.0.0.1", B.Lead->port()));
  ASSERT_TRUE(waitUntil(
      [&] { return A.F->caughtUp() && A.F->lastSeq() == B.Log->currentSeq(); }));
  EXPECT_TRUE(convergedWith(*B.Store, *A.F, 9));
}

TEST(FailoverChaos, ClientSurvivesLeaderPartitionAndPromotion) {
  uint64_t Seed = tests::testSeed(0x5eedfa12);
  SEED_TRACE(Seed);
  SignatureTable Sig = makeExpSignature();

  uint64_t Total = tests::testIters("TRUEDIFF_FAILOVER_ITERS", 200);
  uint64_t Heavy = std::min<uint64_t>(12, std::max<uint64_t>(1, Total / 16));
  for (uint64_t I = 0; I != Heavy; ++I) {
    runClientFailoverSchedule(Sig, mixSeed(Seed ^ 0xc11e, I));
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasFailure()) {
      ADD_FAILURE() << "schedule " << I << " failed (TRUEDIFF_TEST_SEED="
                    << mixSeed(Seed ^ 0xc11e, I) << ")";
      return;
    }
  }
}

} // namespace

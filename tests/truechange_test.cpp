//===- tests/truechange_test.cpp - Edit scripts, MTree, type checker -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the paper's Section 3.1 example scripts (Delta1, Delta2,
/// Delta3) through the standard semantics and the linear type system, and
/// checks that ill-typed scripts -- like the move-based script of
/// Section 1 -- are rejected.
///
//===----------------------------------------------------------------------===//

#include "truechange/Edit.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

class TruechangeTest : public ::testing::Test {
protected:
  TruechangeTest()
      : Sig(makeExpSignature()), Checker(Sig), VarTag(Sig.lookup("Var")),
        AddTag(Sig.lookup("Add")), MulTag(Sig.lookup("Mul")),
        SubTag(Sig.lookup("Sub")), E1(Sig.lookup("e1")),
        E2(Sig.lookup("e2")), NameLink(Sig.lookup("name")) {}

  NodeRef rootRef() const { return NodeRef{Sig.rootTag(), NullURI}; }

  /// Delta1 from Section 3.1: builds Add_3(Var_1("a"), Var_2("b")) from
  /// the empty tree.
  EditScript delta1() const {
    EditScript S;
    S.append(Edit::load(NodeRef{VarTag, 1}, {},
                        {LitRef{NameLink, Literal("a")}}));
    S.append(Edit::load(NodeRef{VarTag, 2}, {},
                        {LitRef{NameLink, Literal("b")}}));
    S.append(Edit::load(NodeRef{AddTag, 3},
                        {KidRef{E1, 1}, KidRef{E2, 2}}, {}));
    S.append(Edit::attach(NodeRef{AddTag, 3}, Sig.rootLink(), rootRef()));
    return S;
  }

  /// Delta2: updates Var_2("b") to Var_2("c").
  EditScript delta2() const {
    EditScript S;
    S.append(Edit::update(NodeRef{VarTag, 2},
                          {LitRef{NameLink, Literal("b")}},
                          {LitRef{NameLink, Literal("c")}}));
    return S;
  }

  /// Delta3: changes Add_3(...) into Mul_4(...).
  EditScript delta3() const {
    EditScript S;
    S.append(Edit::detach(NodeRef{AddTag, 3}, Sig.rootLink(), rootRef()));
    S.append(Edit::unload(NodeRef{AddTag, 3},
                          {KidRef{E1, 1}, KidRef{E2, 2}}, {}));
    S.append(Edit::load(NodeRef{MulTag, 4},
                        {KidRef{E1, 1}, KidRef{E2, 2}}, {}));
    S.append(Edit::attach(NodeRef{MulTag, 4}, Sig.rootLink(), rootRef()));
    return S;
  }

  SignatureTable Sig;
  LinearTypeChecker Checker;
  TagId VarTag, AddTag, MulTag, SubTag;
  LinkId E1, E2, NameLink;
};

//===----------------------------------------------------------------------===//
// Edit printing and metrics
//===----------------------------------------------------------------------===//

TEST_F(TruechangeTest, EditToStringMatchesPaperNotation) {
  Edit E = Edit::detach(NodeRef{SubTag, 2}, E1, NodeRef{AddTag, 1});
  EXPECT_EQ(E.toString(Sig), "detach(Sub_2, \"e1\", Add_1)");
  Edit U = Edit::update(NodeRef{VarTag, 2}, {LitRef{NameLink, Literal("b")}},
                        {LitRef{NameLink, Literal("c")}});
  EXPECT_EQ(U.toString(Sig),
            "update(Var_2, [\"name\"->\"b\"], [\"name\"->\"c\"])");
}

TEST_F(TruechangeTest, CoalescedSizeMergesInsertAndDeletePairs) {
  // load(x); attach(x) counts as one edit; detach(y); unload(y) too.
  EditScript S;
  S.append(Edit::detach(NodeRef{AddTag, 3}, Sig.rootLink(), rootRef()));
  S.append(Edit::unload(NodeRef{AddTag, 3}, {KidRef{E1, 1}, KidRef{E2, 2}},
                        {}));
  S.append(Edit::load(NodeRef{MulTag, 4}, {KidRef{E1, 1}, KidRef{E2, 2}},
                      {}));
  S.append(Edit::attach(NodeRef{MulTag, 4}, Sig.rootLink(), rootRef()));
  EXPECT_EQ(S.size(), 4u);
  EXPECT_EQ(S.coalescedSize(), 2u);
}

TEST_F(TruechangeTest, CoalescedSizeKeepsBareMoves) {
  EditScript S;
  S.append(Edit::detach(NodeRef{SubTag, 2}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::detach(NodeRef{SubTag, 7}, E2, NodeRef{MulTag, 5}));
  S.append(Edit::attach(NodeRef{SubTag, 7}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::attach(NodeRef{SubTag, 2}, E2, NodeRef{MulTag, 5}));
  EXPECT_EQ(S.coalescedSize(), 4u);
}

//===----------------------------------------------------------------------===//
// Standard semantics (paper Figure 2, Section 3.2 walkthrough)
//===----------------------------------------------------------------------===//

TEST_F(TruechangeTest, Delta1BuildsTree) {
  MTree T(Sig);
  auto R = T.patchChecked(delta1());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(T.toString(), "(Add_3 (Var_1 \"a\") (Var_2 \"b\"))");
  EXPECT_EQ(T.indexSize(), 4u); // null, 1, 2, 3
}

TEST_F(TruechangeTest, Delta2UpdatesLiteral) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  auto R = T.patchChecked(delta2());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(T.toString(), "(Add_3 (Var_1 \"a\") (Var_2 \"c\"))");
}

TEST_F(TruechangeTest, Delta3ReplacesConstructor) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  ASSERT_TRUE(T.patchChecked(delta2()).Ok);
  auto R = T.patchChecked(delta3());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(T.toString(), "(Mul_4 (Var_1 \"a\") (Var_2 \"c\"))");
  // Add_3 was unloaded, Mul_4 loaded: index holds null, 1, 2, 4.
  EXPECT_EQ(T.indexSize(), 4u);
  EXPECT_EQ(T.lookup(3), nullptr);
  EXPECT_NE(T.lookup(4), nullptr);
}

TEST_F(TruechangeTest, FromTreePreservesUrisAndContent) {
  TreeContext Ctx(Sig);
  Tree *T = add(Ctx, var(Ctx, "a"), var(Ctx, "b"));
  MTree M = MTree::fromTree(Sig, T);
  EXPECT_TRUE(M.equalsTree(T));
  EXPECT_NE(M.lookup(T->uri()), nullptr);
  EXPECT_EQ(M.indexSize(), 4u);
}

TEST_F(TruechangeTest, PatchFailsOnMissingNode) {
  MTree T(Sig);
  EditScript S;
  S.append(Edit::attach(NodeRef{AddTag, 99}, Sig.rootLink(), rootRef()));
  auto R = T.patch(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorIndex, 0u);
}

//===----------------------------------------------------------------------===//
// Syntactic compliance (Definition 3.5)
//===----------------------------------------------------------------------===//

TEST_F(TruechangeTest, ComplianceRejectsWrongDetachTarget) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  // Claim Var_1 is attached via e2 (it is attached via e1).
  EditScript S;
  S.append(Edit::detach(NodeRef{VarTag, 1}, E2, NodeRef{AddTag, 3}));
  auto R = T.patchChecked(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("non-compliant"), std::string::npos);
}

TEST_F(TruechangeTest, ComplianceRejectsStaleLoadUri) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  EditScript S;
  S.append(Edit::load(NodeRef{VarTag, 1}, {},
                      {LitRef{NameLink, Literal("x")}}));
  auto R = T.patchChecked(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not fresh"), std::string::npos);
}

TEST_F(TruechangeTest, ComplianceRejectsWrongUnloadKids) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  EditScript S;
  S.append(Edit::detach(NodeRef{AddTag, 3}, Sig.rootLink(), rootRef()));
  // Kid list claims e1 -> 2, but really e1 -> 1.
  S.append(Edit::unload(NodeRef{AddTag, 3},
                        {KidRef{E1, 2}, KidRef{E2, 1}}, {}));
  auto R = T.patchChecked(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorIndex, 1u);
}

TEST_F(TruechangeTest, ComplianceRejectsWrongUpdateOldLits) {
  MTree T(Sig);
  ASSERT_TRUE(T.patchChecked(delta1()).Ok);
  EditScript S;
  S.append(Edit::update(NodeRef{VarTag, 2},
                        {LitRef{NameLink, Literal("WRONG")}},
                        {LitRef{NameLink, Literal("c")}}));
  auto R = T.patchChecked(S);
  EXPECT_FALSE(R.Ok);
}

//===----------------------------------------------------------------------===//
// Linear type system (paper Figure 3)
//===----------------------------------------------------------------------===//

TEST_F(TruechangeTest, Delta1IsWellTypedInitializing) {
  auto R = Checker.checkInitializing(delta1());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST_F(TruechangeTest, Delta2AndDelta3AreWellTyped) {
  EXPECT_TRUE(Checker.checkWellTyped(delta2()).Ok);
  EXPECT_TRUE(Checker.checkWellTyped(delta3()).Ok);
}

TEST_F(TruechangeTest, SwapScriptFromSection2IsWellTyped) {
  // Section 2: detach both, then re-attach crosswise.
  EditScript S;
  S.append(Edit::detach(NodeRef{SubTag, 2}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::detach(NodeRef{Sig.lookup("d"), 7}, E2, NodeRef{MulTag, 5}));
  S.append(Edit::attach(NodeRef{Sig.lookup("d"), 7}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::attach(NodeRef{SubTag, 2}, E2, NodeRef{MulTag, 5}));
  LinearState State = LinearState::closed(Sig);
  auto R = Checker.checkScript(S, State);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(State == LinearState::closed(Sig));
}

TEST_F(TruechangeTest, MoveToOccupiedSlotIsIllTyped) {
  // The Section 1 "move" pitfall: attaching to a slot that was never
  // emptied overloads the link and must be rejected.
  EditScript S;
  S.append(Edit::detach(NodeRef{SubTag, 2}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::attach(NodeRef{SubTag, 2}, E2, NodeRef{MulTag, 5}));
  LinearState State = LinearState::closed(Sig);
  auto R = Checker.checkScript(S, State);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorIndex, 1u);
  EXPECT_NE(R.Error.find("not empty"), std::string::npos);
}

TEST_F(TruechangeTest, ReusingNodeTwiceIsIllTyped) {
  // Section 2: attach(b_3, ...) when b_3 is not a root violates
  // linearity.
  EditScript S;
  S.append(Edit::detach(NodeRef{Sig.lookup("a"), 2}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::attach(NodeRef{Sig.lookup("b"), 3}, E1, NodeRef{AddTag, 1}));
  LinearState State = LinearState::closed(Sig);
  auto R = Checker.checkScript(S, State);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not an unattached root"), std::string::npos);
}

TEST_F(TruechangeTest, LeakedRootIsIllTyped) {
  // Detach without reattach or unload leaks a root and a slot.
  EditScript S;
  S.append(Edit::detach(NodeRef{SubTag, 2}, E1, NodeRef{AddTag, 1}));
  auto R = Checker.checkWellTyped(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("leaks"), std::string::npos);
}

TEST_F(TruechangeTest, DetachUnloadLoadAttachRoundTrip) {
  // The Section 2 excessive-demand example:
  //   [detach(a_2,e1,Add_1), unload(a_2), load(b_4), attach(b_4,e1,Add_1)]
  EditScript S;
  S.append(Edit::detach(NodeRef{Sig.lookup("a"), 2}, E1, NodeRef{AddTag, 1}));
  S.append(Edit::unload(NodeRef{Sig.lookup("a"), 2}, {}, {}));
  S.append(Edit::load(NodeRef{Sig.lookup("b"), 4}, {}, {}));
  S.append(Edit::attach(NodeRef{Sig.lookup("b"), 4}, E1, NodeRef{AddTag, 1}));
  EXPECT_TRUE(Checker.checkWellTyped(S).Ok);
  EXPECT_EQ(S.coalescedSize(), 2u);
}

TEST_F(TruechangeTest, LoadWithNonRootKidIsIllTyped) {
  EditScript S;
  S.append(Edit::load(NodeRef{AddTag, 10},
                      {KidRef{E1, 55}, KidRef{E2, 56}}, {}));
  auto R = Checker.checkWellTyped(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not an unattached root"), std::string::npos);
}

TEST_F(TruechangeTest, LoadConsumingSameKidTwiceIsIllTyped) {
  EditScript S;
  S.append(Edit::load(NodeRef{VarTag, 10}, {},
                      {LitRef{NameLink, Literal("v")}}));
  S.append(
      Edit::load(NodeRef{AddTag, 11}, {KidRef{E1, 10}, KidRef{E2, 10}}, {}));
  LinearState State = LinearState::closed(Sig);
  auto R = Checker.checkScript(S, State);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("linear"), std::string::npos);
}

TEST_F(TruechangeTest, UnloadOfAttachedNodeIsIllTyped) {
  // Unloading a node that is not a detached root must fail.
  EditScript S;
  S.append(Edit::unload(NodeRef{SubTag, 2}, {}, {}));
  LinearState State = LinearState::closed(Sig);
  auto R = Checker.checkScript(S, State);
  EXPECT_FALSE(R.Ok);
}

TEST_F(TruechangeTest, UpdateWithWrongKindIsIllTyped) {
  EditScript S;
  S.append(Edit::update(NodeRef{VarTag, 2},
                        {LitRef{NameLink, Literal("b")}},
                        {LitRef{NameLink, Literal(int64_t(3))}}));
  auto R = Checker.checkWellTyped(S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("kind"), std::string::npos);
}

TEST_F(TruechangeTest, LoadWithMissingLiteralIsIllTyped) {
  EditScript S;
  S.append(Edit::load(NodeRef{VarTag, 10}, {}, {}));
  auto R = Checker.checkWellTyped(S);
  EXPECT_FALSE(R.Ok);
}

TEST_F(TruechangeTest, TouchedUrisReportInPlaceMutations) {
  // touchedUris names the nodes whose in-memory state a patch mutates --
  // the set a digest cache must re-examine. Loads and updates touch the
  // node itself, detach/attach touch the parent whose kid slot changes
  // (the virtual root appears as NullURI), and unload touches nothing
  // that still exists. Duplicates collapse to first-touched order.
  std::vector<URI> D1 = delta1().touchedUris();
  EXPECT_EQ(D1, (std::vector<URI>{1, 2, 3, NullURI}));

  std::vector<URI> D2 = delta2().touchedUris();
  EXPECT_EQ(D2, (std::vector<URI>{2}));

  // Delta3 detaches from and reattaches to the root: NullURI appears
  // once, followed by the freshly loaded Mul_4.
  std::vector<URI> D3 = delta3().touchedUris();
  EXPECT_EQ(D3, (std::vector<URI>{NullURI, 4}));

  EXPECT_TRUE(EditScript().touchedUris().empty());
}

TEST_F(TruechangeTest, PatchResultCarriesTouchedUris) {
  // A successful patch reports the same touched set the script declares;
  // a failed patch reports nothing.
  MTree T(Sig);
  auto PR = T.patchChecked(delta1());
  ASSERT_TRUE(PR.Ok);
  EXPECT_EQ(PR.TouchedUris, delta1().touchedUris());

  PR = T.patch(delta2());
  ASSERT_TRUE(PR.Ok);
  EXPECT_EQ(PR.TouchedUris, (std::vector<URI>{2}));

  // Replaying delta2 fails compliance (old literal no longer matches);
  // the failed patch must not claim to have touched anything.
  PR = T.patchChecked(delta2());
  ASSERT_FALSE(PR.Ok);
  EXPECT_TRUE(PR.TouchedUris.empty());
}

TEST_F(TruechangeTest, TypeSafetyTheorem) {
  // Theorem 3.6 in action: a well-typed, compliant script patches
  // successfully, and the result is a well-formed tree.
  MTree T(Sig);
  EditScript Init = delta1();
  ASSERT_TRUE(Checker.checkInitializing(Init).Ok);
  ASSERT_TRUE(T.patchChecked(Init).Ok);
  for (const EditScript &S : {delta2(), delta3()}) {
    ASSERT_TRUE(Checker.checkWellTyped(S).Ok);
    ASSERT_TRUE(T.patchChecked(S).Ok);
  }
  // Final tree matches the Section 3.1 walkthrough.
  EXPECT_EQ(T.toString(), "(Mul_4 (Var_1 \"a\") (Var_2 \"c\"))");
}

} // namespace

//===- tests/support_test.cpp - Unit tests for the support library ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"
#include "support/Literal.h"
#include "support/Rng.h"
#include "support/Sha256.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace truediff;

//===----------------------------------------------------------------------===//
// SHA-256 (FIPS 180-4 test vectors)
//===----------------------------------------------------------------------===//

TEST(Sha256Test, EmptyMessage) {
  EXPECT_EQ(Sha256::hash("").toHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hash("abc").toHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlocks) {
  EXPECT_EQ(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomno"
                         "pnopq")
                .toHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 Hasher;
  std::string Chunk(1000, 'a');
  for (int I = 0; I != 1000; ++I)
    Hasher.update(Chunk);
  EXPECT_EQ(Hasher.finish().toHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 55, 56, 63, 64, 65 bytes exercise all padding cases.
  for (size_t Len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    std::string Msg(Len, 'x');
    Digest Whole = Sha256::hash(Msg);
    Sha256 Chunked;
    for (char C : Msg)
      Chunked.update(&C, 1);
    EXPECT_EQ(Whole, Chunked.finish()) << "length " << Len;
  }
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string Msg = "the quick brown fox jumps over the lazy dog";
  Sha256 Hasher;
  Hasher.update(Msg.substr(0, 10));
  Hasher.update(Msg.substr(10));
  EXPECT_EQ(Hasher.finish(), Sha256::hash(Msg));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 Hasher;
  Hasher.update("garbage");
  (void)Hasher.finish();
  Hasher.reset();
  Hasher.update("abc");
  EXPECT_EQ(Hasher.finish(), Sha256::hash("abc"));
}

TEST(Sha256Test, U64AndU32Helpers) {
  Sha256 A;
  A.updateU64(0x0123456789abcdefull);
  Sha256 B;
  const uint8_t Bytes[8] = {0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01};
  B.update(Bytes, 8);
  EXPECT_EQ(A.finish(), B.finish());

  Sha256 C;
  C.updateU32(0x04030201u);
  Sha256 D;
  const uint8_t Bytes4[4] = {0x01, 0x02, 0x03, 0x04};
  D.update(Bytes4, 4);
  EXPECT_EQ(C.finish(), D.finish());
}

TEST(DigestTest, PrefixWordAndOrdering) {
  Digest A = Sha256::hash("a");
  Digest B = Sha256::hash("b");
  EXPECT_NE(A, B);
  EXPECT_NE(A.prefixWord(), B.prefixWord());
  EXPECT_TRUE((A < B) || (B < A));
  Digest Zero;
  EXPECT_EQ(Zero.prefixWord(), 0u);
}

//===----------------------------------------------------------------------===//
// Interner
//===----------------------------------------------------------------------===//

TEST(InternerTest, InternIsStable) {
  Interner I;
  Symbol A = I.intern("Add");
  Symbol B = I.intern("Sub");
  EXPECT_NE(A, B);
  EXPECT_EQ(A, I.intern("Add"));
  EXPECT_EQ(I.name(A), "Add");
  EXPECT_EQ(I.name(B), "Sub");
}

TEST(InternerTest, LookupWithoutInterning) {
  Interner I;
  EXPECT_EQ(I.lookup("missing"), InvalidSymbol);
  Symbol A = I.intern("present");
  EXPECT_EQ(I.lookup("present"), A);
}

TEST(InternerTest, SymbolZeroIsReserved) {
  Interner I;
  EXPECT_NE(I.intern("first"), InvalidSymbol);
}

//===----------------------------------------------------------------------===//
// Literal
//===----------------------------------------------------------------------===//

TEST(LiteralTest, KindsAndEquality) {
  EXPECT_EQ(Literal(int64_t(4)).kind(), LitKind::Int);
  EXPECT_EQ(Literal(4.0).kind(), LitKind::Float);
  EXPECT_EQ(Literal(true).kind(), LitKind::Bool);
  EXPECT_EQ(Literal("x").kind(), LitKind::String);

  EXPECT_EQ(Literal(int64_t(4)), Literal(int64_t(4)));
  EXPECT_NE(Literal(int64_t(4)), Literal(4.0));
  EXPECT_NE(Literal("a"), Literal("b"));
}

TEST(LiteralTest, ToString) {
  EXPECT_EQ(Literal(int64_t(-7)).toString(), "-7");
  EXPECT_EQ(Literal(true).toString(), "true");
  EXPECT_EQ(Literal("hi\n").toString(), "\"hi\\n\"");
  EXPECT_EQ(Literal(2.5).toString(), "2.5");
  EXPECT_EQ(Literal(2.0).toString(), "2.0");
}

TEST(LiteralTest, HashDistinguishesKindsAndValues) {
  auto HashOf = [](const Literal &L) {
    Sha256 H;
    L.addToHash(H);
    return H.finish();
  };
  EXPECT_NE(HashOf(Literal(int64_t(1))), HashOf(Literal(int64_t(2))));
  EXPECT_NE(HashOf(Literal(int64_t(1))), HashOf(Literal(1.0)));
  EXPECT_NE(HashOf(Literal("1")), HashOf(Literal(int64_t(1))));
  EXPECT_EQ(HashOf(Literal("x")), HashOf(Literal("x")));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, Deterministic) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(42);
  for (int I = 0; I != 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, BelowAndRangeInBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.below(10), 10u);
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// BoxStats
//===----------------------------------------------------------------------===//

TEST(StatsTest, FiveNumberSummary) {
  BoxStats S = BoxStats::of({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(S.Min, 1);
  EXPECT_DOUBLE_EQ(S.Q1, 2);
  EXPECT_DOUBLE_EQ(S.Median, 3);
  EXPECT_DOUBLE_EQ(S.Q3, 4);
  EXPECT_DOUBLE_EQ(S.Max, 5);
  EXPECT_DOUBLE_EQ(S.Mean, 3);
  EXPECT_EQ(S.Count, 5u);
}

TEST(StatsTest, InterpolatedQuartiles) {
  BoxStats S = BoxStats::of({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(S.Median, 2.5);
  EXPECT_DOUBLE_EQ(S.Q1, 1.75);
  EXPECT_DOUBLE_EQ(S.Q3, 3.25);
}

TEST(StatsTest, EmptyAndSingleton) {
  BoxStats Empty = BoxStats::of({});
  EXPECT_EQ(Empty.Count, 0u);
  BoxStats One = BoxStats::of({7});
  EXPECT_DOUBLE_EQ(One.Median, 7);
  EXPECT_DOUBLE_EQ(One.Min, 7);
  EXPECT_DOUBLE_EQ(One.Max, 7);
}

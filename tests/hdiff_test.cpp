//===- tests/hdiff_test.cpp - Unit tests for the hdiff baseline ------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hdiff/HDiff.h"

#include "support/Rng.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::hdiff;
using namespace truediff::testlang;

namespace {

class HDiffTest : public ::testing::Test {
protected:
  HDiffTest() : Sig(makeExpSignature()), Ctx(Sig), Differ(Ctx) {}

  /// Diffs, checks apply(diff(src,dst), src) == dst, returns the patch.
  HDiffPatch checkedDiff(const Tree *Src, const Tree *Dst) {
    HDiffPatch Patch = Differ.diff(Src, Dst);
    Tree *Applied = Differ.apply(Patch, Src);
    EXPECT_NE(Applied, nullptr) << Patch.toString(Sig);
    if (Applied != nullptr) {
      EXPECT_TRUE(treeEqualsModuloUris(Applied, Dst))
          << Patch.toString(Sig);
    }
    return Patch;
  }

  SignatureTable Sig;
  TreeContext Ctx;
  HDiff Differ;
};

TEST_F(HDiffTest, IdenticalTreesShareEverything) {
  Tree *Src = add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)), num(Ctx, 3));
  Tree *Dst = add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)), num(Ctx, 3));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  // The whole tree is one shared metavariable: zero constructors.
  EXPECT_EQ(Patch.numConstructors(), 0u);
  EXPECT_EQ(Patch.numMetaVars(), 1u);
}

TEST_F(HDiffTest, SmallChangeMentionsSpine) {
  // A literal change deep in the tree: the patch must spell out every
  // constructor on the path (the paper's conciseness criticism).
  Tree *Shared = mul(Ctx, num(Ctx, 5), num(Ctx, 6));
  Tree *Src = add(Ctx, Ctx.deepCopy(Shared),
                  call(Ctx, "f", sub(Ctx, num(Ctx, 1), num(Ctx, 2))));
  Tree *Dst = add(Ctx, Ctx.deepCopy(Shared),
                  call(Ctx, "f", sub(Ctx, num(Ctx, 1), num(Ctx, 9))));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  // Spine Add-Call-Sub plus leaves appears on both sides: strictly more
  // constructors than truediff's single update edit.
  EXPECT_GE(Patch.numConstructors(), 8u) << Patch.toString(Sig);
}

TEST_F(HDiffTest, SwapUsesMetavariables) {
  // The Section 1 example: hdiff expresses the swap as
  // Add(#1, Mul(#2,#3)) ~> Add(#3, Mul(#2,#1)) (modulo variable names).
  Tree *Src = add(Ctx, sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")),
                  mul(Ctx, leaf(Ctx, "c"), leaf(Ctx, "d")));
  Tree *Dst = add(Ctx, leaf(Ctx, "d"),
                  mul(Ctx, leaf(Ctx, "c"),
                      sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b"))));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  EXPECT_GE(Patch.numMetaVars(), 1u);
  // Both Add spines and both Mul spines are mentioned.
  EXPECT_GE(Patch.numConstructors(), 4u);
}

TEST_F(HDiffTest, ClosureExposesHiddenVariable) {
  // Src = Call("w", Sub(a,b));  Dst = Add(Sub(a,b), Mul(a, Num(1))).
  // The leaf pair inside Sub is shared, but Dst also uses `a`-like
  // subtrees hidden inside the shared Sub; closure must expand.
  Tree *Inner = sub(Ctx, mul(Ctx, num(Ctx, 7), num(Ctx, 8)), num(Ctx, 9));
  Tree *Src = call(Ctx, "w", Ctx.deepCopy(Inner));
  Tree *Dst = add(Ctx, Ctx.deepCopy(Inner),
                  mul(Ctx, num(Ctx, 7), num(Ctx, 8)));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  // Mul(7,8) is used separately in Dst but hidden inside the shared Sub
  // in Src. Apply correctness (checked above) proves closure worked.
  EXPECT_GE(Patch.numMetaVars(), 1u);
}

TEST_F(HDiffTest, DuplicationBindsVariableTwice) {
  Tree *Payload = mul(Ctx, num(Ctx, 4), num(Ctx, 5));
  Tree *Src = call(Ctx, "f", Ctx.deepCopy(Payload));
  Tree *Dst = add(Ctx, Ctx.deepCopy(Payload), Ctx.deepCopy(Payload));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  EXPECT_EQ(Patch.numMetaVars(), 1u) << Patch.toString(Sig);
}

TEST_F(HDiffTest, ApplyRejectsNonMatchingTree) {
  Tree *Src = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Dst = add(Ctx, num(Ctx, 1), num(Ctx, 3));
  HDiffPatch Patch = Differ.diff(Src, Dst);
  Tree *Other = mul(Ctx, num(Ctx, 1), num(Ctx, 2));
  EXPECT_EQ(Differ.apply(Patch, Other), nullptr);
}

TEST_F(HDiffTest, RepeatedVariableRequiresEqualBindings) {
  // Pattern with a repeated variable must reject inconsistent trees.
  Tree *Payload = mul(Ctx, num(Ctx, 4), num(Ctx, 5));
  Tree *Src = add(Ctx, Ctx.deepCopy(Payload), Ctx.deepCopy(Payload));
  Tree *Dst = call(Ctx, "g", Ctx.deepCopy(Payload));
  HDiffPatch Patch = Differ.diff(Src, Dst);
  ASSERT_NE(Differ.apply(Patch, Src), nullptr);
  // Same shape, different second payload: only rejected when the pattern
  // actually repeats a variable; otherwise it still matches.
  Tree *Inconsistent = add(Ctx, Ctx.deepCopy(Payload),
                           mul(Ctx, num(Ctx, 4), num(Ctx, 6)));
  std::string Dump = Patch.toString(Sig);
  if (Patch.numMetaVars() == 1 &&
      Dump.find("#0") != Dump.rfind("#0")) { // variable occurs twice
    EXPECT_EQ(Differ.apply(Patch, Inconsistent), nullptr) << Dump;
  }
}

TEST_F(HDiffTest, PatchToStringShowsRewriting) {
  Tree *Src = add(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)), num(Ctx, 3));
  Tree *Dst = sub(Ctx, mul(Ctx, num(Ctx, 1), num(Ctx, 2)), num(Ctx, 3));
  HDiffPatch Patch = checkedDiff(Src, Dst);
  std::string S = Patch.toString(Sig);
  EXPECT_NE(S.find("~>"), std::string::npos);
  EXPECT_NE(S.find("#0"), std::string::npos);
}

class HDiffRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HDiffRandomTest, ApplyDiffRoundTrips) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  HDiff Differ(Ctx);
  Rng R(GetParam() * 7907 + 3);

  std::function<Tree *(int)> Gen = [&](int Depth) -> Tree * {
    if (Depth <= 1 || R.chance(30))
      return num(Ctx, R.range(0, 4));
    switch (R.below(4)) {
    case 0:
      return add(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    case 1:
      return sub(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    case 2:
      return mul(Ctx, Gen(Depth - 1), Gen(Depth - 1));
    default:
      return call(Ctx, "f", Gen(Depth - 1));
    }
  };

  Tree *Src = Gen(6);
  Tree *Dst = Gen(6);
  HDiffPatch Patch = Differ.diff(Src, Dst);
  Tree *Applied = Differ.apply(Patch, Src);
  ASSERT_NE(Applied, nullptr) << Patch.toString(Sig);
  EXPECT_TRUE(treeEqualsModuloUris(Applied, Dst)) << Patch.toString(Sig);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HDiffRandomTest,
                         ::testing::Range<uint64_t>(0, 50));

} // namespace

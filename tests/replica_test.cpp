//===- tests/replica_test.cpp - Edit-script replication tests --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the replication layer: a leader shipping the committed
/// edit-script stream to follower replicas over loopback TCP. The core
/// assertion is byte-for-byte convergence -- after hundreds of seeded
/// mutations (submits, rollbacks, erases, re-opens) every follower's
/// materialised document equals the leader's URI-preserving rendering
/// exactly, digest included. Also covered: catch-up via tail replay and
/// via snapshot transfer (including pruning of documents erased while
/// the follower was away), gap-triggered per-document resync,
/// stale-leader epoch fencing, and a follower killed mid-stream that
/// reconnects and converges again.
///
//===----------------------------------------------------------------------===//

#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/ReplicationLog.h"

#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "persist/BinaryCodec.h"
#include "service/DocumentStore.h"
#include "support/Rng.h"
#include "support/Sha256.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace truediff;

namespace {

bool waitUntil(const std::function<bool()> &Pred, int TimeoutMs = 30000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

/// A TreeBuilder that decodes a binary tree blob with fresh URIs -- the
/// same builder the binary front end uses, so the replicated scripts are
/// exactly what a real client submission produces.
service::TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](
             TreeContext &Ctx) -> service::BuildResult {
    persist::DecodeTreeResult D =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, service::ErrCode::MalformedFrame};
    return {D.Root, "", service::ErrCode::None};
  };
}

/// A leader node: store + replication log + leader endpoint on its own
/// event loop, listening on an ephemeral loopback port.
struct LeaderNode {
  const SignatureTable &Sig;
  service::DocumentStore Store;
  replica::ReplicationLog Log;
  net::EventLoop Loop;
  std::unique_ptr<replica::Leader> Lead;
  bool Started = false;

  LeaderNode(const SignatureTable &Sig, uint64_t Epoch = 1,
             size_t TailCapacity = 1024)
      : Sig(Sig), Store(Sig),
        Log(Store, replica::ReplicationLog::Config{TailCapacity}) {
    replica::Leader::Config C;
    C.Epoch = Epoch;
    Lead = std::make_unique<replica::Leader>(Loop, Log, C);
    Log.attach();
    std::string Err;
    Started = Lead->start(&Err);
    EXPECT_TRUE(Started) << Err;
    Loop.start();
  }

  ~LeaderNode() { Loop.stop(); }

  uint16_t port() const { return Lead->port(); }
};

/// A follower node: the replica plus the loop it applies records on.
struct FollowerNode {
  net::EventLoop Loop;
  std::unique_ptr<replica::Follower> F;

  explicit FollowerNode(const SignatureTable &Sig,
                        replica::Follower::Config C = {}) {
    Loop.start();
    F = std::make_unique<replica::Follower>(Loop, Sig, C);
  }

  // Stop the loop first: the follower's teardown then has nothing left
  // to race with.
  ~FollowerNode() {
    F->disconnect();
    Loop.stop();
  }

  bool connect(LeaderNode &L, std::string *Err = nullptr) {
    return F->connectTo("127.0.0.1", L.port(), Err);
  }
};

/// Drives seeded mutations against the leader's store: opens, submits
/// (JSON edits from the corpus mutator), rollbacks, erases, re-opens.
/// Keeps a client-side model tree per document to mutate from, exactly
/// like a real editing client would.
class WorkloadDriver {
public:
  WorkloadDriver(LeaderNode &L, uint64_t Seed, uint64_t NumDocs = 8)
      : L(L), Ctx(L.Sig), R(Seed), NumDocs(NumDocs) {}

  void step() {
    uint64_t Doc = 1 + R.below(NumDocs);
    auto It = Model.find(Doc);
    if (It == Model.end()) {
      openDoc(Doc);
      return;
    }
    unsigned Dice = static_cast<unsigned>(R.below(100));
    if (Dice < 70) {
      submitDoc(Doc);
    } else if (Dice < 85) {
      // Rollback; may fail cleanly at version 0 or past the ring.
      L.Store.rollback(Doc);
    } else {
      ASSERT_TRUE(L.Store.erase(Doc));
      Model.erase(Doc);
    }
  }

  void openDoc(uint64_t Doc) {
    corpus::JsonGenOptions Opts;
    Opts.MaxDepth = 3;
    Opts.MaxFanout = 4;
    Tree *T = corpus::generateJson(Ctx, R, Opts);
    ASSERT_NE(T, nullptr);
    service::StoreResult SR =
        L.Store.open(Doc, blobBuilder(L.Sig, persist::encodeTree(L.Sig, T)));
    ASSERT_TRUE(SR.Ok) << SR.Error;
    Model[Doc] = T;
  }

  void submitDoc(uint64_t Doc) {
    Tree *Next = corpus::mutateJson(Ctx, R, Model[Doc]);
    ASSERT_NE(Next, nullptr);
    service::StoreResult SR = L.Store.submit(
        Doc, blobBuilder(L.Sig, persist::encodeTree(L.Sig, Next)));
    ASSERT_TRUE(SR.Ok) << SR.Error;
    Model[Doc] = Next;
  }

  uint64_t numDocs() const { return NumDocs; }

private:
  LeaderNode &L;
  TreeContext Ctx;
  Rng R;
  uint64_t NumDocs;
  std::unordered_map<uint64_t, Tree *> Model;
};

/// Byte-for-byte convergence: every document live on the leader reads
/// identically (URI-preserving text and SHA-256 digest) on the
/// follower, and every erased document is absent there.
::testing::AssertionResult converged(LeaderNode &L, replica::Follower &F,
                                     uint64_t NumDocs) {
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    service::DocumentSnapshot S = L.Store.snapshot(Doc);
    if (!S.Ok) {
      if (F.contains(Doc))
        return ::testing::AssertionFailure()
               << "doc " << Doc << " erased on the leader but present on "
               << "the follower";
      continue;
    }
    replica::Follower::ReadResult RR = F.read(Doc);
    if (!RR.Ok)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " unreadable on the follower: " << RR.Error;
    if (RR.Version != S.Version)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " version " << RR.Version << " != leader "
             << S.Version;
    if (RR.UriText != S.UriText)
      return ::testing::AssertionFailure()
             << "doc " << Doc << " diverged:\n  leader:   " << S.UriText
             << "\n  follower: " << RR.UriText;
    if (RR.DigestHex != Sha256::hash(S.UriText).toHex())
      return ::testing::AssertionFailure()
             << "doc " << Doc << " digest mismatch";
  }
  return ::testing::AssertionSuccess();
}

bool caughtUpWith(LeaderNode &L, replica::Follower &F) {
  return F.caughtUp() && F.lastSeq() == L.Log.currentSeq();
}

//===----------------------------------------------------------------------===//
// Convergence under a long seeded mutation stream
//===----------------------------------------------------------------------===//

TEST(Replication, FiveHundredMutationsConvergeOnTwoFollowers) {
  uint64_t Seed = tests::testSeed(0x5eed0001);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig);
  ASSERT_TRUE(L.Started);
  FollowerNode F1(Sig), F2(Sig);
  ASSERT_TRUE(F1.connect(L));
  ASSERT_TRUE(F2.connect(L));

  WorkloadDriver Driver(L, Seed);
  uint64_t Steps = tests::testIters("TRUEDIFF_REPL_STEPS", 500);
  for (uint64_t I = 0; I != Steps; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }

  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F1.F); }));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F2.F); }));
  EXPECT_TRUE(converged(L, *F1.F, Driver.numDocs()));
  EXPECT_TRUE(converged(L, *F2.F, Driver.numDocs()));

  // A live stream with no losses needs no repair machinery.
  replica::Follower::Stats S1 = F1.F->stats();
  EXPECT_GT(S1.RecordsApplied, 0u);
  EXPECT_EQ(S1.GapRehellos, 0u);
  EXPECT_EQ(S1.StaleLeaderRejects, 0u);

  replica::Leader::Stats LS = L.Lead->stats();
  EXPECT_EQ(LS.Followers, 2u);
}

//===----------------------------------------------------------------------===//
// Catch-up: tail replay and snapshot transfer
//===----------------------------------------------------------------------===//

TEST(Replication, CatchUpByTailReplay) {
  uint64_t Seed = tests::testSeed(0x5eed0002);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig); // default ring: plenty of room for the whole stream
  ASSERT_TRUE(L.Started);

  WorkloadDriver Driver(L, Seed, 4);
  for (int I = 0; I != 30; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // Connecting after the fact: everything is still in the ring, so the
  // catch-up must be pure tail replay -- no snapshots.
  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
  EXPECT_EQ(F.F->stats().SnapshotsInstalled, 0u);
  EXPECT_GE(L.Lead->stats().TailRecords, F.F->stats().RecordsApplied);

  // Disconnect, mutate some more, reconnect: the delta is still ring-
  // covered, so again tail replay only.
  F.F->disconnect();
  ASSERT_TRUE(waitUntil([&] { return !F.F->connected(); }));
  for (int I = 0; I != 20; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
  EXPECT_EQ(F.F->stats().SnapshotsInstalled, 0u);
}

TEST(Replication, CatchUpBySnapshotTransfer) {
  uint64_t Seed = tests::testSeed(0x5eed0003);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  // A tiny tail ring: anything but the most recent history forces the
  // snapshot path.
  LeaderNode L(Sig, /*Epoch=*/1, /*TailCapacity=*/8);
  ASSERT_TRUE(L.Started);

  WorkloadDriver Driver(L, Seed, 4);
  for (int I = 0; I != 40; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_GT(L.Log.firstTailSeq(), 1u) << "stream too short to evict the ring";

  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
  EXPECT_GT(F.F->stats().SnapshotsInstalled, 0u);
  EXPECT_GT(L.Lead->stats().SnapshotsSent, 0u);
}

TEST(Replication, SnapshotCatchUpPrunesDocsErasedWhileAway) {
  uint64_t Seed = tests::testSeed(0x5eed0004);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig, /*Epoch=*/1, /*TailCapacity=*/8);
  ASSERT_TRUE(L.Started);

  WorkloadDriver Driver(L, Seed, 4);
  Driver.openDoc(1);
  Driver.openDoc(2);
  Driver.openDoc(3);
  if (::testing::Test::HasFatalFailure())
    return;

  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  ASSERT_TRUE(F.F->contains(2));

  // While the follower is away, doc 2 dies and enough traffic flows
  // that its erase record is evicted from the ring: only the snapshot
  // dump's pruning rule can tell the follower.
  F.F->disconnect();
  ASSERT_TRUE(waitUntil([&] { return !F.F->connected(); }));
  ASSERT_TRUE(L.Store.erase(2));
  for (int I = 0; I != 12; ++I) {
    Driver.submitDoc(1);
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(waitUntil(
      [&] { return L.Log.firstTailSeq() > L.Log.currentSeq() - 12; }));

  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_FALSE(F.F->contains(2));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
  EXPECT_GT(F.F->stats().SnapshotsInstalled, 0u);
}

//===----------------------------------------------------------------------===//
// Repair: gap-triggered resync
//===----------------------------------------------------------------------===//

TEST(Replication, VersionGapTriggersResync) {
  uint64_t Seed = tests::testSeed(0x5eed0005);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig);
  ASSERT_TRUE(L.Started);

  WorkloadDriver Driver(L, Seed, 2);
  Driver.openDoc(1);
  if (::testing::Test::HasFatalFailure())
    return;

  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));

  // Corrupt the follower's applied version: the next record for doc 1
  // fails the per-document continuity check and must trigger a
  // ResyncReq, answered with a fresh snapshot.
  F.F->injectGapForTest(1);
  Driver.submitDoc(1);
  if (::testing::Test::HasFatalFailure())
    return;

  ASSERT_TRUE(waitUntil([&] {
    return F.F->stats().ResyncsRequested > 0 &&
           F.F->stats().SnapshotsInstalled > 0;
  }));
  ASSERT_TRUE(waitUntil([&] {
    return caughtUpWith(L, *F.F) && converged(L, *F.F, Driver.numDocs());
  }));
  EXPECT_GE(L.Lead->stats().ResyncsServed, 1u);

  // The repaired replica keeps tracking the live stream.
  Driver.submitDoc(1);
  if (::testing::Test::HasFatalFailure())
    return;
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
}

//===----------------------------------------------------------------------===//
// Failover: stale-leader epoch fencing
//===----------------------------------------------------------------------===//

TEST(Replication, StaleLeaderIsFencedByEpoch) {
  uint64_t Seed = tests::testSeed(0x5eed0006);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode Current(Sig, /*Epoch=*/5);
  LeaderNode Stale(Sig, /*Epoch=*/3);
  ASSERT_TRUE(Current.Started && Stale.Started);

  WorkloadDriver Driver(Current, Seed, 2);
  Driver.openDoc(1);
  if (::testing::Test::HasFatalFailure())
    return;

  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(Current));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(Current, *F.F); }));
  EXPECT_EQ(F.F->stats().MaxEpochSeen, 5u);

  // A leader announcing an epoch below the fencing floor is rejected;
  // the handshake fails and the applied state stays readable.
  F.F->disconnect();
  ASSERT_TRUE(waitUntil([&] { return !F.F->connected(); }));
  std::string Err;
  EXPECT_FALSE(F.connect(Stale, &Err));
  EXPECT_NE(Err.find("stale leader"), std::string::npos) << Err;
  EXPECT_GE(F.F->stats().StaleLeaderRejects, 1u);
  EXPECT_EQ(F.F->stats().MaxEpochSeen, 5u);
  EXPECT_TRUE(F.F->read(1).Ok);

  // Reconnecting to the real leader still works.
  ASSERT_TRUE(F.connect(Current));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(Current, *F.F); }));
  EXPECT_TRUE(converged(Current, *F.F, Driver.numDocs()));
}

//===----------------------------------------------------------------------===//
// A follower killed mid-stream reconnects and converges
//===----------------------------------------------------------------------===//

TEST(Replication, FollowerKilledMidStreamRecovers) {
  uint64_t Seed = tests::testSeed(0x5eed0007);
  SEED_TRACE(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig);
  ASSERT_TRUE(L.Started);
  FollowerNode F(Sig);
  ASSERT_TRUE(F.connect(L));

  WorkloadDriver Driver(L, Seed, 4);
  for (int I = 0; I != 60; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
    // Yank the link mid-stream, while records are still in flight.
    if (I == 30)
      F.F->disconnect();
  }
  ASSERT_TRUE(waitUntil([&] { return !F.F->connected(); }));

  // The reconnect handshake catches up from lastSeq() -- tail replay
  // here -- and the replica converges on the full stream.
  ASSERT_TRUE(F.connect(L));
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));

  // And it keeps applying live records afterwards.
  for (int I = 0; I != 10; ++I) {
    Driver.step();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  ASSERT_TRUE(waitUntil([&] { return caughtUpWith(L, *F.F); }));
  EXPECT_TRUE(converged(L, *F.F, Driver.numDocs()));
}

} // namespace

//===- tests/python_test.cpp - Unit tests for the Python front end ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "python/Python.h"

#include "python/Lexer.h"
#include "tree/SExpr.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::python;

namespace {

class PythonTest : public ::testing::Test {
protected:
  PythonTest() : Sig(makePythonSignature()), Ctx(Sig) {}

  Tree *parseOk(std::string_view Source) {
    PyParseResult R = parsePython(Ctx, Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.Module;
  }

  /// Parses, unparses, reparses: both trees must be equal (canonical
  /// round trip).
  void roundTrip(std::string_view Source) {
    Tree *First = parseOk(Source);
    if (First == nullptr)
      return;
    std::string Printed = unparsePython(Sig, First);
    PyParseResult Again = parsePython(Ctx, Printed);
    ASSERT_TRUE(Again.ok()) << Again.Error << "\nunparsed:\n" << Printed;
    EXPECT_TRUE(treeEqualsModuloUris(First, Again.Module))
        << "unparsed:\n"
        << Printed << "\nfirst:  " << printSExpr(Sig, First)
        << "\nsecond: " << printSExpr(Sig, Again.Module);
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(PyLexerTest, BasicTokens) {
  auto Toks = lexPython("x = 1 + 2.5\n");
  ASSERT_GE(Toks.size(), 7u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Name);
  EXPECT_EQ(Toks[1].Text, "=");
  EXPECT_EQ(Toks[2].Kind, TokKind::Int);
  EXPECT_EQ(Toks[3].Text, "+");
  EXPECT_EQ(Toks[4].Kind, TokKind::Float);
  EXPECT_EQ(Toks[5].Kind, TokKind::Newline);
  EXPECT_EQ(Toks.back().Kind, TokKind::EndOfFile);
}

TEST(PyLexerTest, IndentDedent) {
  auto Toks = lexPython("if x:\n    y = 1\nz = 2\n");
  size_t Indents = 0, Dedents = 0;
  for (const Tok &T : Toks) {
    Indents += T.Kind == TokKind::Indent;
    Dedents += T.Kind == TokKind::Dedent;
  }
  EXPECT_EQ(Indents, 1u);
  EXPECT_EQ(Dedents, 1u);
}

TEST(PyLexerTest, CommentsAndBlankLinesSkipped) {
  auto Toks = lexPython("# comment\n\nx = 1  # trailing\n");
  size_t Names = 0;
  for (const Tok &T : Toks)
    Names += T.Kind == TokKind::Name;
  EXPECT_EQ(Names, 1u);
}

TEST(PyLexerTest, BracketsSuppressNewlines) {
  auto Toks = lexPython("x = f(1,\n      2)\ny = 3\n");
  size_t Newlines = 0;
  for (const Tok &T : Toks)
    Newlines += T.Kind == TokKind::Newline;
  EXPECT_EQ(Newlines, 2u); // one per logical line
}

TEST(PyLexerTest, StringEscapes) {
  auto Toks = lexPython("s = 'a\\nb'\n");
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[2].Kind, TokKind::Str);
  EXPECT_EQ(Toks[2].Text, "a\nb");
}

TEST(PyLexerTest, ErrorOnBadDedent) {
  auto Toks = lexPython("if x:\n        y = 1\n    z = 2\n");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST_F(PythonTest, SimpleModule) {
  Tree *M = parseOk("x = 1\n");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(Sig.name(M->tag()), "Module");
  const Tree *Body = M->kid(0);
  EXPECT_EQ(Sig.name(Body->tag()), "StmtCons");
  EXPECT_EQ(Sig.name(Body->kid(0)->tag()), "Assign");
}

TEST_F(PythonTest, FunctionWithControlFlow) {
  Tree *M = parseOk("def fib(n):\n"
                    "    if n < 2:\n"
                    "        return n\n"
                    "    return fib(n - 1) + fib(n - 2)\n");
  ASSERT_NE(M, nullptr);
  const Tree *Func = M->kid(0)->kid(0);
  EXPECT_EQ(Sig.name(Func->tag()), "FuncDef");
  EXPECT_EQ(Func->lit(0).asString(), "fib");
}

TEST_F(PythonTest, ElifBecomesNestedIf) {
  Tree *M = parseOk("if a:\n    pass\nelif b:\n    pass\nelse:\n    pass\n");
  const Tree *If = M->kid(0)->kid(0);
  ASSERT_EQ(Sig.name(If->tag()), "If");
  const Tree *Else = If->kid(2);
  ASSERT_EQ(Sig.name(Else->tag()), "StmtCons");
  EXPECT_EQ(Sig.name(Else->kid(0)->tag()), "If");
}

TEST_F(PythonTest, OperatorPrecedence) {
  Tree *M = parseOk("x = 1 + 2 * 3\n");
  const Tree *Add = M->kid(0)->kid(0)->kid(1);
  ASSERT_EQ(Sig.name(Add->tag()), "BinOp");
  EXPECT_EQ(Add->lit(0).asString(), "+");
  EXPECT_EQ(Sig.name(Add->kid(1)->tag()), "BinOp");
  EXPECT_EQ(Add->kid(1)->lit(0).asString(), "*");
}

TEST_F(PythonTest, PowerIsRightAssociative) {
  Tree *M = parseOk("x = 2 ** 3 ** 4\n");
  const Tree *Pow = M->kid(0)->kid(0)->kid(1);
  ASSERT_EQ(Sig.name(Pow->tag()), "BinOp");
  EXPECT_EQ(Sig.name(Pow->kid(1)->tag()), "BinOp");
  EXPECT_EQ(Sig.name(Pow->kid(0)->tag()), "IntLit");
}

TEST_F(PythonTest, ComparisonChain) {
  Tree *M = parseOk("x = a < b <= c\n");
  const Tree *Cmp = M->kid(0)->kid(0)->kid(1);
  ASSERT_EQ(Sig.name(Cmp->tag()), "Compare");
  EXPECT_EQ(Cmp->lit(0).asString(), "<=");
  EXPECT_EQ(Sig.name(Cmp->kid(0)->tag()), "Compare");
}

TEST_F(PythonTest, NotInAndIsNot) {
  Tree *M = parseOk("x = a not in b\ny = a is not b\n");
  const Tree *S1 = M->kid(0)->kid(0);
  const Tree *S2 = M->kid(0)->kid(1)->kid(0);
  EXPECT_EQ(S1->kid(1)->lit(0).asString(), "not in");
  EXPECT_EQ(S2->kid(1)->lit(0).asString(), "is not");
}

TEST_F(PythonTest, CallsAttributesSubscripts) {
  Tree *M = parseOk("y = obj.method(a, b)[0].field\n");
  const Tree *E = M->kid(0)->kid(0)->kid(1);
  EXPECT_EQ(Sig.name(E->tag()), "Attribute");
  EXPECT_EQ(Sig.name(E->kid(0)->tag()), "Subscript");
}

TEST_F(PythonTest, CollectionsAndTuples) {
  Tree *M = parseOk("x = [1, 2]\ny = (1, 2)\nz = {1: 'a', 2: 'b'}\n"
                    "w = ()\nv = (1,)\n");
  const Tree *Body = M->kid(0);
  EXPECT_EQ(Sig.name(Body->kid(0)->kid(1)->tag()), "ListExpr");
  const Tree *Y = Body->kid(1)->kid(0)->kid(1);
  EXPECT_EQ(Sig.name(Y->tag()), "TupleExpr");
  const Tree *Z = Body->kid(1)->kid(1)->kid(0)->kid(1);
  EXPECT_EQ(Sig.name(Z->tag()), "DictExpr");
}

TEST_F(PythonTest, ImportsAndAssert) {
  Tree *M = parseOk("import os.path\nfrom keras import layers\n"
                    "assert x == 1\n");
  const Tree *Body = M->kid(0);
  EXPECT_EQ(Sig.name(Body->kid(0)->tag()), "Import");
  EXPECT_EQ(Body->kid(0)->lit(0).asString(), "os.path");
  const Tree *From = Body->kid(1)->kid(0);
  EXPECT_EQ(From->lit(0).asString(), "keras");
  EXPECT_EQ(From->lit(1).asString(), "layers");
}

TEST_F(PythonTest, AugAssignVariants) {
  Tree *M = parseOk("x += 1\nx //= 2\nx **= 3\n");
  const Tree *Body = M->kid(0);
  EXPECT_EQ(Body->kid(0)->lit(0).asString(), "+");
  EXPECT_EQ(Body->kid(1)->kid(0)->lit(0).asString(), "//");
  EXPECT_EQ(Body->kid(1)->kid(1)->kid(0)->lit(0).asString(), "**");
}

TEST_F(PythonTest, ParseErrorsAreReported) {
  EXPECT_FALSE(parsePython(Ctx, "def f(:\n    pass\n").ok());
  EXPECT_FALSE(parsePython(Ctx, "if x\n    pass\n").ok());
  EXPECT_FALSE(parsePython(Ctx, "x = \n").ok());
  EXPECT_FALSE(parsePython(Ctx, "x = 'unterminated\n").ok());
}

TEST_F(PythonTest, ValidatesAgainstSignature) {
  Tree *M = parseOk("def f(a):\n    return a * 2\n");
  EXPECT_FALSE(Ctx.validate(M).has_value());
}

//===----------------------------------------------------------------------===//
// Unparser round trips
//===----------------------------------------------------------------------===//

TEST_F(PythonTest, RoundTripStatements) {
  roundTrip("x = 1\n"
            "y = x + 2\n"
            "del_me = [1, 2, 3]\n");
  roundTrip("def f(a, b):\n"
            "    c = a * b\n"
            "    return c\n");
  roundTrip("class Model(Base):\n"
            "    def run(self):\n"
            "        pass\n");
  roundTrip("for i in range(10):\n"
            "    if i % 2 == 0:\n"
            "        continue\n"
            "    total += i\n");
  roundTrip("while not done:\n"
            "    step()\n"
            "    break\n");
}

TEST_F(PythonTest, RoundTripExpressions) {
  roundTrip("x = a or b and not c\n");
  roundTrip("x = -(a + b) * c ** 2\n");
  roundTrip("x = a < b <= c != d\n");
  roundTrip("x = f(g(1), h()[0].attr)\n");
  roundTrip("x = {'k': [1, (2, 3)], 'j': (4,)}\n");
  roundTrip("x = a is not None and b not in c\n");
  roundTrip("x, y = y, x\n");
  roundTrip("x = 2 ** 3 ** 4\n");
  roundTrip("x = (a + b) * (c - d) / e % f // g\n");
}

TEST_F(PythonTest, RoundTripMixedProgram) {
  roundTrip("import math\n"
            "from keras import layers\n"
            "\n"
            "def dense(units, activation):\n"
            "    layer = layers.Dense(units)\n"
            "    if activation is not None:\n"
            "        layer.activation = activation\n"
            "    elif units > 128:\n"
            "        layer.activation = 'relu'\n"
            "    return layer\n"
            "\n"
            "class Net(Model):\n"
            "    def call(self, x):\n"
            "        for layer in self.layers:\n"
            "            x = layer(x)\n"
            "        return x\n"
            "\n"
            "assert dense(1, None) is not None\n");
}

TEST_F(PythonTest, RoundTripEmptyModule) { roundTrip(""); }

} // namespace

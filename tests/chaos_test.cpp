//===- tests/chaos_test.cpp - Fault-injection chaos suite ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection hammer for the persistence circuit breaker. A
/// FaultyIoEnv drives seeded schedules of ENOSPC/EIO write failures,
/// torn writes, benign short writes, fsync failures, failed renames, and
/// whole-disk death through the WAL and snapshot writers while a
/// mutation chain runs against the store. The invariants, per schedule:
///
///   * no operation acknowledged durable is ever lost -- recovery lands
///     on a per-document committed prefix at or past every durable ack;
///   * every logged script (minimal diffs and replace-root fallbacks
///     alike) passes the LinearTypeChecker, verified both inline and by
///     replay (InvalidRecords == 0);
///   * the breaker provably re-closes once faults stop (the half-open
///     probe succeeds), resync snapshots repair every unlogged gap, and
///     a final recovery reproduces the live store exactly.
///
/// Seeds come from TestSeed.h: per-PR CI uses the fixed defaults, the
/// nightly chaos job sets TRUEDIFF_TEST_SEED randomly and
/// TRUEDIFF_CHAOS_ITERS high; every failure message carries the seed.
///
//===----------------------------------------------------------------------===//

#include "persist/IoEnv.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"

#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"
#include "tree/SExpr.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

class TempDir {
public:
  TempDir() {
    std::string Tmpl = ::testing::TempDir() + "chaosXXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : "";
  }
  ~TempDir() {
    for (const auto &[Index, Path] : listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const SnapshotFileName &F : listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

std::string randomExpText(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(3) == 0) {
    switch (R.below(3)) {
    case 0:
      return "(Num " + std::to_string(R.below(100)) + ")";
    case 1:
      return "(Var \"" + std::string(1, static_cast<char>('a' + R.below(26))) +
             "\")";
    default:
      return R.below(2) != 0 ? "(a)" : "(b)";
    }
  }
  static const char *Ops[] = {"Add", "Sub", "Mul"};
  return std::string("(") + Ops[R.below(3)] + " " +
         randomExpText(R, Depth - 1) + " " + randomExpText(R, Depth - 1) + ")";
}

/// One acknowledged operation in a document's history: its WAL sequence
/// number, the durability the ack claimed, and the full document state
/// right after it (nullopt = erased).
struct AckedOp {
  uint64_t Seq = 0;
  bool Logged = false;
  bool Durable = false;
  std::optional<std::pair<uint64_t, std::string>> State; // (version, UriText)
};

/// Per-document acknowledged history for the committed-prefix check.
using AckLog = std::map<DocId, std::vector<AckedOp>>;

/// Highest sequence number the run acknowledged as durable for \p Doc.
uint64_t maxDurableSeq(const AckLog &Log, DocId Doc) {
  uint64_t Max = 0;
  auto It = Log.find(Doc);
  if (It == Log.end())
    return 0;
  for (const AckedOp &Op : It->second)
    if (Op.Durable && Op.Seq > Max)
      Max = Op.Seq;
  return Max;
}

/// The committed-prefix property for one document: the recovered state
/// must equal the state after SOME acknowledged operation whose sequence
/// number is at or past every durable ack -- recovery may hold more than
/// was promised, never less, and never a state that existed at no commit
/// point.
void expectCommittedPrefix(const AckLog &Log, DocId Doc,
                           DocumentStore &Recovered) {
  uint64_t NeedSeq = maxDurableSeq(Log, Doc);
  DocumentSnapshot S = Recovered.snapshot(Doc);
  std::optional<std::pair<uint64_t, std::string>> Got;
  if (S.Ok)
    Got = std::make_pair(S.Version, S.UriText);

  auto It = Log.find(Doc);
  if (It == Log.end()) {
    // Never acknowledged anything for this id; it must not exist.
    EXPECT_FALSE(S.Ok) << "doc " << Doc << " appeared from nowhere";
    return;
  }
  // "State before the first op" is also a committed prefix (nothing
  // durable yet means recovery may legitimately hold nothing).
  if (!Got.has_value() && NeedSeq == 0)
    return;
  for (const AckedOp &Op : It->second)
    if (Op.Seq >= NeedSeq && Op.State == Got)
      return;
  FAIL() << "doc " << Doc << ": recovered state "
         << (Got ? Got->second : std::string("<absent>"))
         << " matches no acknowledged state at seq >= " << NeedSeq
         << " (durable acks must never be lost)";
}

} // namespace

//===----------------------------------------------------------------------===//
// WAL poisoning: the failure-atomicity unit of the breaker
//===----------------------------------------------------------------------===//

TEST(WalPoisonTest, FailedAppendPoisonsUntilReopenFresh) {
  TempDir Dir;
  // Faultable-call budget: ctor = open + header write + fsync (3), first
  // append = write + fsync (FsyncEvery 1) -> dies on call 6, the second
  // append's write.
  FaultyIoEnv::FaultPlan Plan;
  Plan.Seed = tests::testSeed(404);
  Plan.DieAfterOps = 5;
  FaultyIoEnv Io(Plan);

  auto Rec = [](uint64_t Seq) {
    WalRecord R;
    R.Kind = WalKind::Submit;
    R.Doc = 1;
    R.Seq = Seq;
    R.Version = Seq;
    R.Script = "payload";
    return R;
  };

  WalWriter W(Dir.path(), WalWriter::Config{1, 4u << 20}, &Io);
  EXPECT_TRUE(W.append(Rec(1))); // durable: FsyncEvery=1
  EXPECT_FALSE(W.poisoned());

  EXPECT_THROW(W.append(Rec(2)), std::runtime_error);
  EXPECT_TRUE(W.poisoned());
  // Fail fast now: the segment tail may hold a torn frame, and a record
  // appended behind it would be silently discarded by the reader.
  EXPECT_THROW(W.append(Rec(3)), std::runtime_error);
  // flush() has nothing pending (the failed record was never counted as
  // logged) so it succeeds trivially -- but it must not clear the poison.
  EXPECT_NO_THROW(W.flush());
  EXPECT_TRUE(W.poisoned());

  Io.heal();
  W.reopenFresh(); // the half-open probe action
  EXPECT_FALSE(W.poisoned());
  EXPECT_TRUE(W.append(Rec(3)));
  EXPECT_EQ(W.stats().Reopens, 1u);

  // The durable prefix of the poisoned segment and the fresh segment
  // both recover; the failed record 2 (never acknowledged) is gone.
  std::vector<uint64_t> Seqs;
  for (const auto &[Index, Path] : listWalSegments(Dir.path()))
    for (const WalRecord &R : readWalSegment(Index, Path).Records)
      Seqs.push_back(R.Seq);
  EXPECT_EQ(Seqs, (std::vector<uint64_t>{1, 3}));
}

//===----------------------------------------------------------------------===//
// Dead disk: deterministic trip, degraded serving, probe, resync
//===----------------------------------------------------------------------===//

TEST(BreakerTest, DeadDiskTripsBreakerThenRecoversExactly) {
  SignatureTable Sig = makeExpSignature();
  TempDir Dir;
  uint64_t Seed = tests::testSeed(9001);
  SEED_TRACE(Seed);

  FaultyIoEnv::FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.DieAfterOps = 8; // survives startup + both opens, then dies
  FaultyIoEnv Io(Plan);

  Persistence::Config PC;
  PC.Dir = Dir.path();
  PC.FsyncEvery = 1;
  PC.SnapshotEvery = 0;
  PC.BackgroundIntervalMs = 0; // drive probe/resync by hand
  PC.Env = &Io;
  PC.BreakerThreshold = 2;
  PC.BreakerBackoffMs = 1;
  PC.BreakerBackoffMaxMs = 4;

  DocumentStore Store(Sig);
  Persistence P(Sig, PC);
  P.attach(Store);

  AckLog Log;
  P.setDurabilityListener([&](DocId Doc, uint64_t Seq, bool Logged,
                              bool Durable) {
    Log[Doc].push_back({Seq, Logged, Durable, std::nullopt});
  });
  auto Commit = [&](DocId Doc, const StoreResult &R) {
    ASSERT_TRUE(R.Ok) << R.Error;
    DocumentSnapshot S = Store.snapshot(Doc);
    if (S.Ok)
      Log[Doc].back().State = std::make_pair(S.Version, S.UriText);
  };

  Commit(1, Store.open(1, makeSExprBuilder("(a)")));
  Commit(2, Store.open(2, makeSExprBuilder("(b)")));
  ASSERT_TRUE(Log[1].back().Durable); // disk alive, FsyncEvery=1
  ASSERT_TRUE(Log[2].back().Durable);

  // Hammer submits until the dead disk trips the breaker; every commit
  // must still be acknowledged (in-memory), just not as durable. Two
  // documents alternate because a document whose append failed stops
  // attempting (it needs a resync first) -- consecutive failures accrue
  // across the documents that still try.
  Rng R(Seed);
  int UntilTrip = 0;
  while (!P.degraded()) {
    ASSERT_LT(UntilTrip, 50) << "breaker never tripped on a dead disk";
    DocId Doc = 1 + static_cast<DocId>(UntilTrip++ % 2);
    Commit(Doc, Store.submit(Doc, makeSExprBuilder(randomExpText(R, 2))));
  }
  uint64_t VersionAtTrip = Store.snapshot(1).Version;

  // Degraded mode: serving continues, acks are explicit about the lie
  // they are not telling.
  Commit(1, Store.submit(1, makeSExprBuilder("(Add (a) (b))")));
  EXPECT_FALSE(Log[1].back().Logged);
  EXPECT_FALSE(Log[1].back().Durable);
  EXPECT_GT(Store.snapshot(1).Version, VersionAtTrip);

  Persistence::HealthInfo H = P.healthInfo();
  EXPECT_TRUE(H.Degraded);
  EXPECT_EQ(H.BreakerTrips, 1u);
  EXPECT_GT(H.UnloggedOps, 0u);
  EXPECT_NE(P.statsJson().find("\"degraded\":true"), std::string::npos);
  // flush() with nothing pending succeeds trivially, but a flush must
  // never close the breaker -- only a successful append/probe proves the
  // disk writes again.
  P.flush();
  EXPECT_TRUE(P.degraded());
  EXPECT_FALSE(P.probe()); // faults persist: probe cannot close it

  // Faults cease. The half-open probe must re-close the breaker within
  // the backoff schedule (1..4ms plus jitter).
  Io.heal();
  for (int Tries = 0; P.degraded(); ++Tries) {
    ASSERT_LT(Tries, 4000) << "breaker never re-closed after heal()";
    P.probe();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(P.healthInfo().Degraded);
  EXPECT_GT(P.healthInfo().DegradedUs, 0u);
  EXPECT_NE(P.statsJson().find("\"degraded\":false"), std::string::npos);

  // Resync repairs the unlogged gap with a fresh snapshot; from here the
  // log chain is whole again.
  EXPECT_GE(P.resyncDegraded(), 1u);
  EXPECT_EQ(P.stats().DocsNeedingResync, 0u);
  Commit(1, Store.submit(1, makeSExprBuilder("(Mul (a) (b))")));
  EXPECT_TRUE(Log[1].back().Logged);
  EXPECT_TRUE(P.flush());

  // Recovery now reproduces the live store exactly -- including the
  // operations that were acknowledged while degraded, because the
  // resync snapshots carried them.
  DocumentStore Fresh(Sig);
  RecoveryResult RR = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(RR.DocsDropped, 0u);
  EXPECT_EQ(RR.InvalidRecords, 0u);
  for (DocId Doc : {DocId(1), DocId(2)}) {
    DocumentSnapshot Live = Store.snapshot(Doc);
    DocumentSnapshot Rec = Fresh.snapshot(Doc);
    ASSERT_TRUE(Rec.Ok) << "doc " << Doc;
    EXPECT_EQ(Rec.Version, Live.Version) << "doc " << Doc;
    EXPECT_EQ(Rec.UriText, Live.UriText) << "doc " << Doc;
    EXPECT_EQ(Fresh.checkDigests(Doc), std::nullopt);
  }
}

namespace {

/// Fails opens of snapshot files (and only those) while armed, passing
/// everything else through to the real environment. Models a disk whose
/// WAL region writes fine while snapshot writes hit a bad sector -- the
/// breaker is shared across both writers, so snapshot-only failures
/// must trip it just like append failures do.
class SnapFailEnv : public IoEnv {
public:
  std::atomic<bool> FailSnapshots{false};

  int openFile(const char *Path, int Flags, mode_t Mode) override {
    if (FailSnapshots.load() &&
        std::string_view(Path).find("snap-") != std::string_view::npos) {
      errno = EIO;
      return -1;
    }
    return realIoEnv().openFile(Path, Flags, Mode);
  }
};

} // namespace

TEST(BreakerTest, SnapshotFailuresTripTheSharedBreaker) {
  SignatureTable Sig = makeExpSignature();
  TempDir Dir;
  SnapFailEnv Env;

  Persistence::Config PC;
  PC.Dir = Dir.path();
  PC.FsyncEvery = 1;
  PC.SnapshotEvery = 0;        // snapshots by hand only
  PC.BackgroundIntervalMs = 0; // drive the probe by hand
  PC.Env = &Env;
  PC.BreakerThreshold = 2;
  PC.BreakerBackoffMs = 1;
  PC.BreakerBackoffMaxMs = 4;

  DocumentStore Store(Sig);
  Persistence P(Sig, PC);
  P.attach(Store);

  ASSERT_TRUE(Store.open(1, makeSExprBuilder("(Add (a) (b))")).Ok);
  ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(Mul (a) (b))")).Ok);
  ASSERT_FALSE(P.degraded());

  // Two failed snapshot writes reach BreakerThreshold even though every
  // WAL append succeeded: one disk, one disease, one failure count.
  Env.FailSnapshots = true;
  EXPECT_FALSE(P.snapshotDocument(1));
  EXPECT_FALSE(P.degraded()); // one failure, threshold is two
  EXPECT_FALSE(P.snapshotDocument(1));
  EXPECT_TRUE(P.degraded());

  Persistence::Stats St = P.stats();
  EXPECT_EQ(St.SnapshotFailures, 2u);
  EXPECT_EQ(St.WalAppendFailures, 0u);
  EXPECT_EQ(St.BreakerTrips, 1u);

  // Failures while the breaker is already open count in the stats but
  // must not touch the probe schedule: the probe loop below still
  // re-closes the breaker on its own backoff once the disk heals.
  EXPECT_FALSE(P.snapshotDocument(1));
  EXPECT_EQ(P.stats().SnapshotFailures, 3u);
  EXPECT_EQ(P.stats().BreakerTrips, 1u);

  Env.FailSnapshots = false;
  for (int Tries = 0; P.degraded(); ++Tries) {
    ASSERT_LT(Tries, 4000) << "breaker never re-closed after heal";
    P.probe();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Closed again: snapshots work, and the consecutive-failure count
  // restarted from zero -- a single new failure must not re-trip.
  EXPECT_TRUE(P.snapshotDocument(1));
  Env.FailSnapshots = true;
  EXPECT_FALSE(P.snapshotDocument(1));
  EXPECT_FALSE(P.degraded());
  Env.FailSnapshots = false;
  EXPECT_TRUE(P.snapshotDocument(1));
  EXPECT_FALSE(P.degraded());
  EXPECT_EQ(P.stats().BreakerTrips, 1u);
}

TEST(BreakerTest, SlowDiskDoesNotTripTheBreaker) {
  SignatureTable Sig = makeExpSignature();
  TempDir Dir;
  uint64_t Seed = tests::testSeed(7321);
  SEED_TRACE(Seed);

  // Latency only: every faultable call dawdles up to 1.5ms but always
  // succeeds. A slow disk is not a dead disk -- the breaker counts
  // failures, not sojourn time, so it must stay closed throughout.
  FaultyIoEnv::FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.MaxLatencyUs = 1500;
  Plan.TornWritePermille = 0;
  FaultyIoEnv Io(Plan);

  Persistence::Config PC;
  PC.Dir = Dir.path();
  PC.FsyncEvery = 1;
  PC.SnapshotEvery = 0;
  PC.BackgroundIntervalMs = 0;
  PC.Env = &Io;
  PC.BreakerThreshold = 2;

  DocumentStore Store(Sig);
  {
    Persistence P(Sig, PC);
    P.attach(Store);

    unsigned Acks = 0, Durable = 0;
    P.setDurabilityListener(
        [&](DocId, uint64_t, bool Logged, bool Dur) {
          ++Acks;
          Durable += Dur ? 1 : 0;
          EXPECT_TRUE(Logged);
        });

    Rng R(Seed);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
    ASSERT_TRUE(Store.open(2, makeSExprBuilder("(b)")).Ok);
    for (int I = 0; I < 24; ++I) {
      DocId Doc = 1 + static_cast<DocId>(I % 2);
      StoreResult SR =
          Store.submit(Doc, makeSExprBuilder(randomExpText(R, 3)));
      ASSERT_TRUE(SR.Ok) << SR.Error;
    }
    EXPECT_EQ(Acks, 26u);
    EXPECT_EQ(Durable, Acks); // FsyncEvery=1 and nothing ever failed

    // Snapshot writes ride the same slow disk and still land.
    EXPECT_TRUE(P.snapshotDocument(1));
    EXPECT_TRUE(P.snapshotDocument(2));

    Persistence::Stats St = P.stats();
    EXPECT_FALSE(St.Degraded);
    EXPECT_EQ(St.BreakerTrips, 0u);
    EXPECT_EQ(St.WalAppendFailures, 0u);
    EXPECT_EQ(St.SnapshotFailures, 0u);
    EXPECT_EQ(St.SnapshotsWritten, 2u);
    EXPECT_TRUE(P.flush());
  } // dtor: final flush + close, all on the slow-but-healthy disk

  DocumentStore Fresh(Sig);
  RecoveryResult RR = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(RR.DocsDropped, 0u);
  EXPECT_EQ(RR.InvalidRecords, 0u);
  for (DocId Doc : {DocId(1), DocId(2)}) {
    DocumentSnapshot Live = Store.snapshot(Doc);
    DocumentSnapshot Rec = Fresh.snapshot(Doc);
    ASSERT_TRUE(Rec.Ok) << "doc " << Doc;
    EXPECT_EQ(Rec.Version, Live.Version) << "doc " << Doc;
    EXPECT_EQ(Rec.UriText, Live.UriText) << "doc " << Doc;
    EXPECT_EQ(Fresh.checkDigests(Doc), std::nullopt);
  }
}

//===----------------------------------------------------------------------===//
// The chaos property: randomized fault schedules, mixed mutation chains
//===----------------------------------------------------------------------===//

TEST(ChaosTest, DurableAcksSurviveEverySeededFaultSchedule) {
  SignatureTable Sig = makeExpSignature();
  LinearTypeChecker Checker(Sig);
  const uint64_t BaseSeed = tests::testSeed(20260806);
  const uint64_t Iters = tests::testIters("TRUEDIFF_CHAOS_ITERS", 10);

  for (uint64_t Iter = 0; Iter != Iters; ++Iter) {
    const uint64_t Seed = BaseSeed + Iter * 0x9e3779b97f4a7c15ull;
    SEED_TRACE(BaseSeed);
    SCOPED_TRACE("iteration " + std::to_string(Iter));
    TempDir Dir;
    Rng R(Seed);

    FaultyIoEnv::FaultPlan Plan;
    Plan.Seed = Seed ^ 0xc6a4a7935bd1e995ull;
    Plan.WriteErrorPermille = 30 + static_cast<unsigned>(R.below(250));
    Plan.FsyncErrorPermille = static_cast<unsigned>(R.below(200));
    Plan.ShortWritePermille = 150;
    Plan.OpenErrorPermille = static_cast<unsigned>(R.below(120));
    Plan.RenameErrorPermille = static_cast<unsigned>(R.below(200));
    // Every few schedules, the disk dies outright mid-chain.
    if (R.chance(25))
      Plan.DieAfterOps = 20 + R.below(60);
    FaultyIoEnv Io(Plan);

    Persistence::Config PC;
    PC.Dir = Dir.path();
    PC.FsyncEvery = 1 + R.below(4);
    PC.SnapshotEvery = 3;
    PC.BackgroundIntervalMs = 1; // hammer probe/resync/tombstone retry
    PC.Env = &Io;
    PC.BreakerThreshold = 1 + R.below(3);
    PC.BreakerBackoffMs = 1;
    PC.BreakerBackoffMaxMs = 4;

    DocumentStore Store(Sig);
    // Startup may hit an injected open failure; that must surface as the
    // constructor's clean error. Retry -- the schedule advances.
    std::unique_ptr<Persistence> P;
    for (int Tries = 0; P == nullptr && Tries != 64; ++Tries) {
      try {
        P = std::make_unique<Persistence>(Sig, PC);
      } catch (const std::exception &) {
      }
    }
    ASSERT_NE(P, nullptr);
    P->attach(Store);

    AckLog Log;
    P->setDurabilityListener([&](DocId Doc, uint64_t Seq, bool Logged,
                                 bool Durable) {
      Log[Doc].push_back({Seq, Logged, Durable, std::nullopt});
    });
    // Every emitted script -- minimal diff, fallback, init, inverse --
    // must pass the linear type checker even while the disk burns.
    Store.addScriptListener([&](DocId, uint64_t, DocumentStore::StoreOp Op,
                                const EditScript &S,
                                const DocumentStore::ScriptInfo &) {
      TypeCheckResult TC = Op == DocumentStore::StoreOp::Open
                               ? Checker.checkInitializing(S)
                               : Checker.checkWellTyped(S);
      EXPECT_TRUE(TC.Ok) << TC.Error;
    });

    auto Record = [&](DocId Doc, const StoreResult &SR) {
      if (!SR.Ok)
        return;
      ASSERT_FALSE(Log[Doc].empty());
      DocumentSnapshot S = Store.snapshot(Doc);
      if (S.Ok)
        Log[Doc].back().State = std::make_pair(S.Version, S.UriText);
    };
    auto PromoteFlushed = [&] {
      // A successful flush makes every previously-logged record durable:
      // from here those acks are load-bearing.
      if (!P->flush())
        return;
      for (auto &[Doc, Ops] : Log)
        for (AckedOp &Op : Ops)
          if (Op.Logged)
            Op.Durable = true;
    };

    Record(1, Store.open(1, makeSExprBuilder(randomExpText(R, 3))));
    Record(2, Store.open(2, makeSExprBuilder(randomExpText(R, 3))));

    const unsigned NumOps = 28;
    for (unsigned I = 0; I != NumOps; ++I) {
      DocId Doc = 1 + R.below(2);
      switch (R.below(10)) {
      case 0:
        Record(Doc, Store.rollback(Doc)); // may fail at v0; fine
        break;
      case 1: { // erase + note the absence (tombstone path)
        if (Store.contains(2) && R.chance(60)) {
          Store.erase(2);
          ASSERT_FALSE(Log[2].empty());
          Log[2].back().State = std::nullopt;
        }
        break;
      }
      case 2: // reopen after erase
        if (!Store.contains(2))
          Record(2, Store.open(2, makeSExprBuilder(randomExpText(R, 3))));
        break;
      case 3: { // deadline fallback: replace-root instead of a diff
        if (Store.contains(Doc)) {
          SubmitOptions Opts;
          Opts.UseFallback = [] { return true; };
          StoreResult SR = Store.submit(
              Doc, makeSExprBuilder(randomExpText(R, 3)), Opts);
          if (SR.Ok) {
            EXPECT_TRUE(SR.UsedFallback);
          }
          Record(Doc, SR);
        }
        break;
      }
      case 4:
        PromoteFlushed();
        break;
      case 5:
        if (Store.contains(Doc) && P->snapshotDocument(Doc))
          PromoteFlushed(); // SAVE semantics: snapshot then flush
        break;
      default:
        if (Store.contains(Doc))
          Record(Doc, Store.submit(
                          Doc, makeSExprBuilder(randomExpText(R, 1 + R.below(3)))));
        break;
      }
    }

    // Phase 2: faults cease. The breaker must re-close, pending
    // tombstones and resync snapshots must land (the 1ms background
    // pass drives probe + repair), and a flush must succeed.
    Io.heal();
    auto HealedBy = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    for (;;) {
      Persistence::Stats St = P->stats();
      if (!St.Degraded && St.PendingTombstones == 0 &&
          St.DocsNeedingResync == 0)
        break;
      ASSERT_LT(std::chrono::steady_clock::now(), HealedBy)
          << "breaker/resync never converged after heal: degraded="
          << St.Degraded << " pending_tombs=" << St.PendingTombstones
          << " needs_resync=" << St.DocsNeedingResync;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(P->flush());
    PromoteFlushed();

    // One more fully-durable commit per live doc proves the log chain
    // is whole again after the repair.
    for (DocId Doc : {DocId(1), DocId(2)})
      if (Store.contains(Doc))
        Record(Doc, Store.submit(Doc, makeSExprBuilder("(Num 7)")));
    PromoteFlushed();

    std::map<DocId, std::pair<uint64_t, std::string>> Final;
    for (DocId Doc : {DocId(1), DocId(2)}) {
      DocumentSnapshot S = Store.snapshot(Doc);
      if (S.Ok)
        Final[Doc] = {S.Version, S.UriText};
    }
    uint64_t Trips = P->stats().BreakerTrips;
    std::string FinalStats = P->statsJson();
    P.reset(); // clean teardown (final fsync is healed)

    // Recovery from the survived directory: per-document committed
    // prefix covering every durable ack...
    DocumentStore Fresh(Sig);
    RecoveryResult RR = Persistence::recover(Sig, Dir.path(), Fresh);
    if (RR.DocsDropped != 0 || RR.InvalidRecords != 0) {
      // Dump the surviving directory so a failure is diagnosable from
      // the log alone (the temp dir is gone by the time anyone looks).
      std::string Dump = "on-disk state:\n";
      for (const SnapshotFileName &F : listSnapshotFiles(Dir.path())) {
        ReadSnapshotResult SR = readSnapshotFile(F.Path);
        if (!SR.Ok) {
          Dump += "  snapshot " + F.Path + " CORRUPT\n";
          continue;
        }
        Dump += "  snapshot doc=" + std::to_string(SR.Snap.Doc) +
                " seq=" + std::to_string(SR.Snap.Seq) +
                (SR.Snap.Tombstone ? " tombstone" : "") + "\n";
      }
      for (const auto &[Index, Path] : listWalSegments(Dir.path()))
        for (const WalRecord &Rec : readWalSegment(Index, Path).Records)
          Dump += "  wal seg=" + std::to_string(Index) +
                  " doc=" + std::to_string(Rec.Doc) +
                  " seq=" + std::to_string(Rec.Seq) +
                  " kind=" + std::to_string(static_cast<int>(Rec.Kind)) +
                  "\n";
      for (const auto &[Doc, Ops] : Log) {
        Dump += "  acks doc=" + std::to_string(Doc) + ":";
        for (const AckedOp &Op : Ops)
          Dump += " " + std::to_string(Op.Seq) +
                  (Op.State ? "" : "(erase)") + (Op.Durable ? "D" : "") +
                  (Op.Logged ? "L" : "");
        Dump += "\n";
      }
      ADD_FAILURE() << Dump << "  stats: " << FinalStats;
    }
    EXPECT_EQ(RR.DocsDropped, 0u) << "replay must never drop a document";
    EXPECT_EQ(RR.InvalidRecords, 0u)
        << "every logged script must decode and type-check";
    for (DocId Doc : {DocId(1), DocId(2)})
      expectCommittedPrefix(Log, Doc, Fresh);

    // ...and because phase 2 repaired everything, recovery is exact.
    for (DocId Doc : {DocId(1), DocId(2)}) {
      auto It = Final.find(Doc);
      DocumentSnapshot S = Fresh.snapshot(Doc);
      if (It == Final.end()) {
        EXPECT_FALSE(S.Ok) << "doc " << Doc << " should be gone";
        continue;
      }
      ASSERT_TRUE(S.Ok) << "doc " << Doc << " lost after repair";
      EXPECT_EQ(S.Version, It->second.first);
      EXPECT_EQ(S.UriText, It->second.second);
      EXPECT_EQ(Fresh.checkDigests(Doc), std::nullopt);
    }
    (void)Trips;
  }
}

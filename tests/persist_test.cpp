//===- tests/persist_test.cpp - Durable persistence tests ------------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the persistence subsystem: CRC32C and varint primitives,
/// the binary tree/script codec (round trips, hostile literals, total
/// decoding of corrupt input), the WAL writer/reader (group commit,
/// rotation, torn tails), snapshot files, recovery, compaction -- and
/// the crash-point property test: a WAL truncated at *every byte
/// offset* must recover to exactly the state after some committed
/// prefix of operations, never a half-applied one. The concurrency
/// tests run under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "persist/BinaryCodec.h"
#include "persist/Crc32c.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Varint.h"
#include "persist/Wal.h"

#include "corpus/Mutator.h"
#include "corpus/PyGen.h"
#include "python/Python.h"
#include "service/DiffService.h"
#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"
#include "tree/SExpr.h"
#include "truechange/InitScript.h"
#include "truechange/MTree.h"
#include "truechange/Serialize.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <thread>

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::persist;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

/// A unique scratch directory, removed (recursively, one level deep --
/// the data dirs here hold only files) on destruction.
class TempDir {
public:
  TempDir() {
    std::string Tmpl = ::testing::TempDir() + "persistXXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : "";
  }
  ~TempDir() {
    for (const auto &[Index, Path] : listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const SnapshotFileName &F : listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Random s-expression over the test language, literals included.
std::string randomExpText(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(3) == 0) {
    switch (R.below(3)) {
    case 0:
      return "(Num " + std::to_string(R.below(100)) + ")";
    case 1:
      return "(Var \"" + std::string(1, static_cast<char>('a' + R.below(26))) +
             "\")";
    default:
      return R.below(2) != 0 ? "(a)" : "(b)";
    }
  }
  static const char *Ops[] = {"Add", "Sub", "Mul"};
  return std::string("(") + Ops[R.below(3)] + " " + randomExpText(R, Depth - 1) +
         " " + randomExpText(R, Depth - 1) + ")";
}

/// (version, uri-annotated text) of every live document among \p Ids.
std::map<DocId, std::pair<uint64_t, std::string>>
captureState(const DocumentStore &Store, const std::vector<DocId> &Ids) {
  std::map<DocId, std::pair<uint64_t, std::string>> Out;
  for (DocId Doc : Ids) {
    DocumentSnapshot S = Store.snapshot(Doc);
    if (S.Ok)
      Out[Doc] = {S.Version, S.UriText};
  }
  return Out;
}

void expectStoreMatches(
    DocumentStore &Store, const std::vector<DocId> &Ids,
    const std::map<DocId, std::pair<uint64_t, std::string>> &Expected) {
  for (DocId Doc : Ids) {
    auto It = Expected.find(Doc);
    if (It == Expected.end()) {
      EXPECT_FALSE(Store.contains(Doc)) << "doc " << Doc << " should be gone";
      continue;
    }
    DocumentSnapshot S = Store.snapshot(Doc);
    ASSERT_TRUE(S.Ok) << "doc " << Doc << " missing";
    EXPECT_EQ(S.Version, It->second.first) << "doc " << Doc;
    EXPECT_EQ(S.UriText, It->second.second) << "doc " << Doc;
    auto Stale = Store.checkDigests(Doc);
    EXPECT_FALSE(Stale.has_value()) << "doc " << Doc << ": " << *Stale;
  }
}

Persistence::Config plainConfig(const std::string &Dir) {
  Persistence::Config C;
  C.Dir = Dir;
  C.FsyncEvery = 1;
  C.SnapshotEvery = 0;       // snapshots only when a test asks
  C.BackgroundIntervalMs = 0; // no background thread unless a test asks
  return C;
}

//===----------------------------------------------------------------------===//
// CRC32C and varints
//===----------------------------------------------------------------------===//

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector.
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8a9136aau);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  std::string Data = "the quick brown fox jumps over the lazy dog";
  for (size_t Split = 0; Split <= Data.size(); ++Split) {
    uint32_t C = crc32c(0, Data.data(), Split);
    C = crc32c(C, Data.data() + Split, Data.size() - Split);
    EXPECT_EQ(C, crc32c(Data)) << "split " << Split;
  }
}

TEST(VarintTest, RoundTripsBoundaries) {
  std::vector<uint64_t> Values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t V : Values) {
    std::string Buf;
    putVarint(Buf, V);
    size_t Pos = 0;
    auto Back = getVarint(Buf, Pos);
    ASSERT_TRUE(Back.has_value()) << V;
    EXPECT_EQ(*Back, V);
    EXPECT_EQ(Pos, Buf.size());
    // Every strict prefix must fail, not mis-decode.
    for (size_t Cut = 0; Cut != Buf.size(); ++Cut) {
      size_t P = 0;
      EXPECT_FALSE(getVarint(std::string_view(Buf).substr(0, Cut), P));
    }
  }
}

TEST(VarintTest, ZigzagRoundTripsSignedExtremes) {
  for (int64_t V : {int64_t(0), int64_t(-1), int64_t(1),
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()})
    EXPECT_EQ(unzigzag(zigzag(V)), V);
}

//===----------------------------------------------------------------------===//
// Binary codec
//===----------------------------------------------------------------------===//

class CodecTest : public ::testing::Test {
protected:
  SignatureTable Sig = makeExpSignature();
};

TEST_F(CodecTest, ScriptRoundTripsThroughBinary) {
  TreeContext Ctx(Sig);
  Tree *Before = sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b"));
  Tree *After =
      sub(Ctx, add(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b")), leaf(Ctx, "b"));
  TrueDiff Differ(Ctx);
  EditScript Script = Differ.compareTo(Before, After).Script;
  ASSERT_FALSE(Script.empty());

  std::string Blob = encodeEditScript(Sig, Script);
  DecodeScriptResult Back = decodeEditScript(Sig, Blob);
  ASSERT_TRUE(Back.Ok) << Back.Error;
  EXPECT_EQ(serializeEditScript(Sig, Back.Script),
            serializeEditScript(Sig, Script));
}

TEST_F(CodecTest, TreeRoundTripsWithUris) {
  TreeContext Ctx(Sig);
  Tree *T = mul(Ctx, call(Ctx, "f", num(Ctx, 42)), var(Ctx, "x"));
  std::string Blob = encodeTree(Sig, T);

  TreeContext Fresh(Sig);
  DecodeTreeResult Back = decodeTree(Sig, Fresh, Blob);
  ASSERT_TRUE(Back.ok()) << Back.Error;
  EXPECT_EQ(printSExprWithUris(Sig, Back.Root), printSExprWithUris(Sig, T));
  // Re-encoding is byte-identical: the codec is canonical.
  EXPECT_EQ(encodeTree(Sig, Back.Root), Blob);
}

TEST_F(CodecTest, EveryStrictPrefixOfAScriptBlobFails) {
  TreeContext Ctx(Sig);
  Tree *T = add(Ctx, var(Ctx, "long_variable_name"), num(Ctx, 7));
  EditScript Script = buildInitializingScript(Sig, T);
  std::string Blob = encodeEditScript(Sig, Script);
  for (size_t Cut = 0; Cut != Blob.size(); ++Cut)
    EXPECT_FALSE(decodeEditScript(Sig, std::string_view(Blob).substr(0, Cut)).Ok)
        << "prefix of " << Cut << " bytes decoded";
}

TEST_F(CodecTest, DecoderIsTotalUnderRandomCorruption) {
  TreeContext Ctx(Sig);
  Tree *T = sub(Ctx, mul(Ctx, num(Ctx, 1), var(Ctx, "y")), leaf(Ctx, "c"));
  std::string ScriptBlob =
      encodeEditScript(Sig, buildInitializingScript(Sig, T));
  std::string TreeBlob = encodeTree(Sig, T);

  Rng R(7);
  for (int I = 0; I != 2000; ++I) {
    std::string S = ScriptBlob;
    S[R.below(S.size())] ^= static_cast<char>(1 + R.below(255));
    decodeEditScript(Sig, S); // must not crash; Ok either way

    std::string U = TreeBlob;
    U[R.below(U.size())] ^= static_cast<char>(1 + R.below(255));
    TreeContext Fresh(Sig);
    decodeTree(Sig, Fresh, U); // must not crash
  }
}

TEST(CodecPropertyTest, RandomPythonScriptsRoundTrip) {
  SignatureTable Sig = python::makePythonSignature();
  Rng R(1234);
  for (int Round = 0; Round != 20; ++Round) {
    TreeContext Ctx(Sig);
    corpus::PyGenOptions GenOpts;
    GenOpts.NumFunctions = 2;
    GenOpts.NumClasses = 1;
    Tree *Before = corpus::generateModule(Ctx, R, GenOpts);
    Tree *After = corpus::mutateModule(Ctx, R, Before);
    TrueDiff Differ(Ctx);
    EditScript Script = Differ.compareTo(Before, After).Script;

    std::string Blob = encodeEditScript(Sig, Script);
    DecodeScriptResult Back = decodeEditScript(Sig, Blob);
    ASSERT_TRUE(Back.Ok) << Back.Error;
    EXPECT_EQ(serializeEditScript(Sig, Back.Script),
              serializeEditScript(Sig, Script));
    EXPECT_EQ(encodeEditScript(Sig, Back.Script), Blob);

    std::string TreeBlob = encodeTree(Sig, After);
    TreeContext Fresh(Sig);
    DecodeTreeResult TreeBack = decodeTree(Sig, Fresh, TreeBlob);
    ASSERT_TRUE(TreeBack.ok()) << TreeBack.Error;
    EXPECT_EQ(printSExprWithUris(Sig, TreeBack.Root),
              printSExprWithUris(Sig, After));
  }
}

//===----------------------------------------------------------------------===//
// Hostile literals: textual Serialize round trip (the fuzz the issue
// asks for) and the binary codec over the same corpus
//===----------------------------------------------------------------------===//

class HostileLiteralTest : public ::testing::Test {
protected:
  HostileLiteralTest() {
    Sig.defineTag("F", "E", {}, {{"x", LitKind::Float}});
    Sig.defineTag("I", "E", {}, {{"n", LitKind::Int}});
    Sig.defineTag("S", "E", {}, {{"s", LitKind::String}});
    Sig.defineTag("B", "E", {}, {{"b", LitKind::Bool}});
  }

  /// Round-trips the initializing script of a single node holding \p L
  /// through both the textual and the binary format.
  void roundTrip(const char *Tag, Literal L) {
    TreeContext Ctx(Sig);
    Tree *T = Ctx.make(Tag, {}, {L});
    EditScript Script = buildInitializingScript(Sig, T);

    std::string Text = serializeEditScript(Sig, Script);
    ParseScriptResult Parsed = parseEditScript(Sig, Text);
    ASSERT_TRUE(Parsed.Ok) << "text was: " << Text << "\n" << Parsed.Error;
    EXPECT_EQ(serializeEditScript(Sig, Parsed.Script), Text)
        << "textual round trip diverged";

    std::string Blob = encodeEditScript(Sig, Script);
    DecodeScriptResult Back = decodeEditScript(Sig, Blob);
    ASSERT_TRUE(Back.Ok) << Back.Error;
    // Binary must be exact to the bit, NaN payloads included.
    EXPECT_EQ(encodeEditScript(Sig, Back.Script), Blob);
  }

  SignatureTable Sig;
};

TEST_F(HostileLiteralTest, HostileStringsRoundTrip) {
  std::vector<std::string> Corpus = {
      "",
      "plain",
      "with space",
      "quote\"inside",
      "backslash\\inside",
      "trailing\\",
      "newline\nin the middle",
      "tab\there",
      "carriage\rreturn",
      std::string("embedded\0nul", 12),
      "\x01\x02\x1f control bytes",
      "\x7f delete",
      "utf-8: h\xc3\xa9llo \xe2\x86\x92 \xe4\xb8\x96\xe7\x95\x8c",
      "\\n not an escape",
      "looks like \" -> [\"e1\"->7]",
      std::string(1000, '"'),
  };
  for (const std::string &S : Corpus)
    roundTrip("S", Literal(S));
}

TEST_F(HostileLiteralTest, HostileFloatsRoundTrip) {
  std::vector<double> Corpus = {
      0.0,
      -0.0,
      1.0,
      -1.5,
      3.141592653589793,
      1e308,
      -1e308,
      5e-324, // smallest denormal
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
  };
  for (double D : Corpus)
    roundTrip("F", Literal(D));
}

TEST_F(HostileLiteralTest, IntBoolExtremesRoundTrip) {
  roundTrip("I", Literal(std::numeric_limits<int64_t>::min()));
  roundTrip("I", Literal(std::numeric_limits<int64_t>::max()));
  roundTrip("I", Literal(int64_t(0)));
  roundTrip("I", Literal(int64_t(-1)));
  roundTrip("B", Literal(true));
  roundTrip("B", Literal(false));
}

TEST_F(HostileLiteralTest, NonFiniteFloatSpellingsParse) {
  // The serializer used to render inf as "inf.0" (unparseable) and
  // "-inf" fell into the integer path, silently parsing as int 0.
  EXPECT_EQ(Literal(std::numeric_limits<double>::infinity()).toString(),
            "inf");
  EXPECT_EQ(Literal(-std::numeric_limits<double>::infinity()).toString(),
            "-inf");
  EXPECT_EQ(Literal(std::numeric_limits<double>::quiet_NaN()).toString(),
            "nan");
}

TEST(SerializePropertyTest, RandomScriptsRoundTripTextually) {
  SignatureTable Sig = python::makePythonSignature();
  Rng R(99);
  for (int Round = 0; Round != 30; ++Round) {
    TreeContext Ctx(Sig);
    Tree *Before = corpus::generateModule(Ctx, R);
    Tree *After = corpus::mutateModule(Ctx, R, Before);
    TrueDiff Differ(Ctx);
    EditScript Script = Differ.compareTo(Before, After).Script;

    std::string Text = serializeEditScript(Sig, Script);
    ParseScriptResult Parsed = parseEditScript(Sig, Text);
    ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
    EXPECT_EQ(serializeEditScript(Sig, Parsed.Script), Text);
  }
}

//===----------------------------------------------------------------------===//
// WAL writer and reader
//===----------------------------------------------------------------------===//

TEST(WalTest, AppendFlushReadBack) {
  TempDir Dir;
  std::vector<WalRecord> Written;
  {
    WalWriter W(Dir.path(), {4, 4u << 20});
    for (uint64_t I = 0; I != 10; ++I) {
      WalRecord Rec;
      Rec.Kind = static_cast<WalKind>(I % 4);
      Rec.Doc = I % 3;
      Rec.Seq = I + 1;
      Rec.Version = I;
      Rec.Script = std::string(I, static_cast<char>('a' + I));
      Written.push_back(Rec);
      W.append(Rec);
    }
    W.flush();
    EXPECT_EQ(W.stats().Records, 10u);
    EXPECT_GE(W.stats().Fsyncs, 2u); // 10 records / batch of 4, plus flush
  }
  auto Segs = listWalSegments(Dir.path());
  ASSERT_EQ(Segs.size(), 1u);
  WalSegment Seg = readWalSegment(Segs[0].first, Segs[0].second);
  EXPECT_TRUE(Seg.HeaderOk);
  EXPECT_EQ(Seg.TornBytes, 0u);
  ASSERT_EQ(Seg.Records.size(), Written.size());
  for (size_t I = 0; I != Written.size(); ++I) {
    EXPECT_EQ(Seg.Records[I].Kind, Written[I].Kind);
    EXPECT_EQ(Seg.Records[I].Doc, Written[I].Doc);
    EXPECT_EQ(Seg.Records[I].Seq, Written[I].Seq);
    EXPECT_EQ(Seg.Records[I].Version, Written[I].Version);
    EXPECT_EQ(Seg.Records[I].Script, Written[I].Script);
  }
}

TEST(WalTest, GroupCommitAcknowledgesDurabilityOnTheBatchBoundary) {
  TempDir Dir;
  WalWriter W(Dir.path(), {3, 4u << 20});
  WalRecord Rec;
  Rec.Script = "x";
  int Durable = 0;
  for (int I = 0; I != 9; ++I)
    Durable += W.append(Rec) ? 1 : 0;
  EXPECT_EQ(Durable, 3); // every third append fsyncs
}

TEST(WalTest, RotationNeverSplitsARecord) {
  TempDir Dir;
  std::vector<size_t> Sizes;
  {
    WalWriter W(Dir.path(), {1, 256}); // tiny segments
    WalRecord Rec;
    Rec.Script = std::string(100, 'p');
    for (int I = 0; I != 10; ++I) {
      Rec.Seq = static_cast<uint64_t>(I + 1);
      W.append(Rec);
    }
    EXPECT_GE(W.stats().Rotations, 1u);
  }
  auto Segs = listWalSegments(Dir.path());
  EXPECT_GT(Segs.size(), 1u);
  uint64_t Total = 0, LastSeq = 0;
  for (const auto &[Index, Path] : Segs) {
    WalSegment Seg = readWalSegment(Index, Path);
    EXPECT_TRUE(Seg.HeaderOk);
    EXPECT_EQ(Seg.TornBytes, 0u);
    for (const WalRecord &Rec : Seg.Records) {
      EXPECT_EQ(Rec.Seq, LastSeq + 1) << "segment order broke seq order";
      LastSeq = Rec.Seq;
      ++Total;
    }
  }
  EXPECT_EQ(Total, 10u);
}

TEST(WalTest, NewWriterNeverAppendsToAnExistingSegment) {
  TempDir Dir;
  {
    WalWriter W(Dir.path(), {1, 4u << 20});
    WalRecord Rec;
    Rec.Seq = 1;
    W.append(Rec);
  }
  {
    WalWriter W(Dir.path(), {1, 4u << 20});
    WalRecord Rec;
    Rec.Seq = 2;
    W.append(Rec);
  }
  auto Segs = listWalSegments(Dir.path());
  ASSERT_EQ(Segs.size(), 2u);
  EXPECT_LT(Segs[0].first, Segs[1].first);
}

TEST(WalTest, ListingIgnoresForeignFiles) {
  TempDir Dir;
  { WalWriter W(Dir.path(), {1, 4u << 20}); }
  writeFile(Dir.path() + "/wal-2.logg", "junk");
  writeFile(Dir.path() + "/wal-x.log", "junk");
  writeFile(Dir.path() + "/wal-.log", "junk");
  writeFile(Dir.path() + "/notes.txt", "junk");
  EXPECT_EQ(listWalSegments(Dir.path()).size(), 1u);
  ::unlink((Dir.path() + "/wal-2.logg").c_str());
  ::unlink((Dir.path() + "/wal-x.log").c_str());
  ::unlink((Dir.path() + "/wal-.log").c_str());
  ::unlink((Dir.path() + "/notes.txt").c_str());
}

TEST(WalTest, TornTailYieldsExactlyTheCompleteRecords) {
  TempDir Dir;
  {
    WalWriter W(Dir.path(), {1, 4u << 20});
    for (uint64_t I = 1; I <= 5; ++I) {
      WalRecord Rec;
      Rec.Seq = I;
      Rec.Script = std::string(20 + I, 'q');
      W.append(Rec);
    }
  }
  auto Segs = listWalSegments(Dir.path());
  ASSERT_EQ(Segs.size(), 1u);
  std::string Full = readFile(Segs[0].second);
  WalSegment Intact = readWalSegment(1, Segs[0].second);
  ASSERT_EQ(Intact.Records.size(), 5u);

  size_t PrevCount = 0;
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    std::string Truncated = Full.substr(0, Cut);
    std::string Path = Dir.path() + "/torn.bin";
    writeFile(Path, Truncated);
    WalSegment Seg = readWalSegment(1, Path);
    // Record count grows monotonically with the cut and every surfaced
    // record is complete and equal to what was written.
    EXPECT_GE(Seg.Records.size(), PrevCount);
    PrevCount = Seg.Records.size();
    for (size_t I = 0; I != Seg.Records.size(); ++I) {
      EXPECT_EQ(Seg.Records[I].Seq, Intact.Records[I].Seq);
      EXPECT_EQ(Seg.Records[I].Script, Intact.Records[I].Script);
    }
    if (Cut == Full.size()) {
      EXPECT_EQ(Seg.Records.size(), 5u);
    }
    ::unlink(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Snapshot files
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, WriteReadRoundTrip) {
  TempDir Dir;
  SnapshotData Snap;
  Snap.Doc = 7;
  Snap.Seq = 42;
  Snap.Version = 3;
  Snap.TreeBlob = "tree bytes \x01\x02";
  Snap.History.emplace_back(2, "script two");
  Snap.History.emplace_back(3, std::string("script\0three", 12));

  std::string Path = writeSnapshotFile(Dir.path(), Snap);
  ReadSnapshotResult Back = readSnapshotFile(Path);
  ASSERT_TRUE(Back.Ok) << Back.Error;
  EXPECT_EQ(Back.Snap.Doc, 7u);
  EXPECT_EQ(Back.Snap.Seq, 42u);
  EXPECT_EQ(Back.Snap.Version, 3u);
  EXPECT_FALSE(Back.Snap.Tombstone);
  EXPECT_EQ(Back.Snap.TreeBlob, Snap.TreeBlob);
  ASSERT_EQ(Back.Snap.History.size(), 2u);
  EXPECT_EQ(Back.Snap.History[1].second, Snap.History[1].second);

  auto Files = listSnapshotFiles(Dir.path());
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0].Doc, 7u);
  EXPECT_EQ(Files[0].Seq, 42u);
}

TEST(SnapshotTest, TombstoneRoundTrip) {
  TempDir Dir;
  SnapshotData Snap;
  Snap.Doc = 9;
  Snap.Seq = 5;
  Snap.Tombstone = true;
  std::string Path = writeSnapshotFile(Dir.path(), Snap);
  ReadSnapshotResult Back = readSnapshotFile(Path);
  ASSERT_TRUE(Back.Ok) << Back.Error;
  EXPECT_TRUE(Back.Snap.Tombstone);
  EXPECT_TRUE(Back.Snap.TreeBlob.empty());
}

TEST(SnapshotTest, EveryByteFlipIsDetected) {
  TempDir Dir;
  SnapshotData Snap;
  Snap.Doc = 1;
  Snap.Seq = 2;
  Snap.TreeBlob = "payload";
  Snap.History.emplace_back(1, "s");
  std::string Path = writeSnapshotFile(Dir.path(), Snap);
  std::string Full = readFile(Path);
  std::string Corrupt = Dir.path() + "/snap-corrupt.bin";
  for (size_t I = 0; I != Full.size(); ++I) {
    std::string Bytes = Full;
    Bytes[I] ^= 0x40;
    writeFile(Corrupt, Bytes);
    ReadSnapshotResult R = readSnapshotFile(Corrupt);
    EXPECT_FALSE(R.Ok) << "flip at byte " << I << " went unnoticed";
  }
  ::unlink(Corrupt.c_str());
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

class RecoveryTest : public ::testing::Test {
protected:
  SignatureTable Sig = makeExpSignature();
};

TEST_F(RecoveryTest, RecoversDocumentsVersionsAndHistory) {
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  std::string PreRollbackUriText;
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(Sub (a) (b))")).Ok);
    PreRollbackUriText = Store.snapshot(1).UriText;
    ASSERT_TRUE(
        Store.submit(1, makeSExprBuilder("(Sub (Add (a) (b)) (b))")).Ok);
    ASSERT_TRUE(Store.open(2, makeSExprBuilder("(Num 5)")).Ok);
    ASSERT_TRUE(Store.submit(2, makeSExprBuilder("(Num 6)")).Ok);
    ASSERT_TRUE(Store.rollback(2).Ok); // back to (Num 5)
    Expected = captureState(Store, {1, 2});
    P.flush();
  }

  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.DocsRecovered, 2u);
  EXPECT_EQ(R.RecordsReplayed, 5u);
  EXPECT_EQ(R.InvalidRecords, 0u);
  EXPECT_EQ(R.DocsDropped, 0u);
  expectStoreMatches(Fresh, {1, 2}, Expected);

  // The history ring survived: doc 1's submit can still be undone, and
  // the rollback lands URI-exactly on the pre-submit state.
  StoreResult RB = Fresh.rollback(1);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(Fresh.snapshot(1).UriText, PreRollbackUriText);
}

TEST_F(RecoveryTest, SnapshotCutsReplayAndPreservesState) {
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    Rng R(3);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
    for (int I = 0; I != 6; ++I)
      ASSERT_TRUE(Store.submit(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
    ASSERT_TRUE(P.snapshotDocument(1));
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Store.submit(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
    Expected = captureState(Store, {1});
    P.flush();
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.SnapshotsLoaded, 1u);
  EXPECT_EQ(R.RecordsReplayed, 3u); // only the post-snapshot suffix
  EXPECT_EQ(R.RecordsSkipped, 7u);  // open + 6 submits covered
  expectStoreMatches(Fresh, {1}, Expected);
  // Rollback depth survives through the snapshot's history ring.
  EXPECT_TRUE(Fresh.rollback(1).Ok);
}

TEST_F(RecoveryTest, EraseIsDurableAndReopenSurvives) {
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
    ASSERT_TRUE(Store.open(2, makeSExprBuilder("(b)")).Ok);
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(Add (a) (b))")).Ok);
    ASSERT_TRUE(Store.erase(1));
    // Reopening the same id after erase starts a new life for it.
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(Mul (c) (d))")).Ok);
    Expected = captureState(Store, {1, 2});
    P.flush();
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.DocsRecovered, 2u);
  expectStoreMatches(Fresh, {1, 2}, Expected);
  EXPECT_EQ(Fresh.snapshot(1).Text, "(Mul (c) (d))");
}

TEST_F(RecoveryTest, ErasedDocumentStaysGone) {
  TempDir Dir;
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(b)")).Ok);
    ASSERT_TRUE(Store.erase(1));
    P.flush();
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.DocsRecovered, 0u);
  EXPECT_FALSE(Fresh.contains(1));
}

TEST_F(RecoveryTest, OrphanRecordsAreSkippedNotFatal) {
  TempDir Dir;
  {
    // Hand-craft the race: a submit record for a document that was never
    // opened (its open/erase happened under a different life that was
    // compacted away, or the erase notification overtook the submit's).
    WalWriter W(Dir.path(), {1, 4u << 20});
    WalRecord Rec;
    Rec.Kind = WalKind::Submit;
    Rec.Doc = 99;
    Rec.Seq = 1;
    Rec.Version = 4;
    Rec.Script = "not even a valid blob";
    W.append(Rec);
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.OrphanRecords, 1u);
  EXPECT_EQ(R.DocsRecovered, 0u);
  EXPECT_EQ(R.DocsDropped, 0u);
}

TEST_F(RecoveryTest, CompactionDropsCoveredSegmentsAndKeepsStateRecoverable) {
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  size_t SegmentsAfterCompaction = 0;
  {
    DocumentStore Store(Sig);
    Persistence::Config PC = plainConfig(Dir.path());
    PC.SegmentBytes = 160; // rotate roughly every record
    Persistence P(Sig, PC);
    P.attach(Store);
    Rng R(11);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 2))).Ok);
    ASSERT_TRUE(Store.open(2, makeSExprBuilder(randomExpText(R, 2))).Ok);
    for (int I = 0; I != 8; ++I)
      ASSERT_TRUE(Store
                      .submit(1 + static_cast<DocId>(I % 2),
                              makeSExprBuilder(randomExpText(R, 2)))
                      .Ok);
    size_t SegmentsBefore = listWalSegments(Dir.path()).size();
    ASSERT_GT(SegmentsBefore, 2u);

    ASSERT_TRUE(P.snapshotDocument(1));
    ASSERT_TRUE(P.snapshotDocument(2));
    P.compact();
    SegmentsAfterCompaction = listWalSegments(Dir.path()).size();
    EXPECT_LT(SegmentsAfterCompaction, SegmentsBefore);
    EXPECT_GT(P.stats().SegmentsDeleted, 0u);

    // Keep writing after compaction; recovery sees snapshot + suffix.
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder(randomExpText(R, 2))).Ok);
    Expected = captureState(Store, {1, 2});
    P.flush();
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.SnapshotsLoaded, 2u);
  expectStoreMatches(Fresh, {1, 2}, Expected);
}

TEST_F(RecoveryTest, TombstoneLetsCompactionDropEraseRecords) {
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  {
    DocumentStore Store(Sig);
    Persistence::Config PC = plainConfig(Dir.path());
    PC.SegmentBytes = 160;
    Persistence P(Sig, PC);
    P.attach(Store);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
    ASSERT_TRUE(Store.open(2, makeSExprBuilder("(b)")).Ok);
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(Add (a) (b))")).Ok);
    ASSERT_TRUE(Store.erase(1)); // tombstone written here
    ASSERT_TRUE(P.snapshotDocument(2));
    P.compact();
    // Every doc-1 record is covered by the tombstone, every doc-2 record
    // by its snapshot: all closed segments must be gone.
    for (const auto &[Index, Path] : listWalSegments(Dir.path()))
      EXPECT_EQ(Index, P.stats().CurrentSegment) << "closed segment survived";
    Expected = captureState(Store, {1, 2});
    P.flush();
  }
  DocumentStore Fresh(Sig);
  Persistence::recover(Sig, Dir.path(), Fresh);
  expectStoreMatches(Fresh, {1, 2}, Expected);
}

TEST_F(RecoveryTest, SequenceCounterResumesPastRecoveredHistory) {
  TempDir Dir;
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    ASSERT_TRUE(Store.open(1, makeSExprBuilder("(a)")).Ok);
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(b)")).Ok);
    P.flush();
  }
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  {
    // Second life: recover, keep writing, snapshot, compact.
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    RecoveryResult R = P.recoverAndAttach(Store);
    ASSERT_EQ(R.DocsRecovered, 1u);
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder("(Add (a) (b))")).Ok);
    ASSERT_TRUE(P.snapshotDocument(1));
    P.compact();
    Expected = captureState(Store, {1});
    P.flush();
  }
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  // The third life must see the second life's writes win over the
  // first's: sequence numbers kept increasing across the restart.
  expectStoreMatches(Fresh, {1}, Expected);
  EXPECT_EQ(R.DocsRecovered, 1u);
}

//===----------------------------------------------------------------------===//
// The crash-point property: truncate the WAL at every byte offset;
// recovery must land exactly on a committed prefix -- never between
// records, never on a half-applied script -- and the recovered store
// must pass checkDigests.
//===----------------------------------------------------------------------===//

TEST_F(RecoveryTest, EveryTruncationOffsetRecoversACommittedPrefix) {
  TempDir Dir;
  // Expected[k] is the full store state after the first k committed
  // operations (each committed operation appends exactly one record).
  std::vector<std::map<DocId, std::pair<uint64_t, std::string>>> Expected;
  uint64_t Seed = tests::testSeed(2026);
  SEED_TRACE(Seed);
  {
    DocumentStore Store(Sig);
    Persistence P(Sig, plainConfig(Dir.path()));
    P.attach(Store);
    Rng R(Seed);
    Expected.push_back(captureState(Store, {1, 2})); // state after 0 records

    ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
    Expected.push_back(captureState(Store, {1, 2}));
    ASSERT_TRUE(Store.open(2, makeSExprBuilder(randomExpText(R, 3))).Ok);
    Expected.push_back(captureState(Store, {1, 2}));

    // Random mutation chain across both documents, rollbacks included.
    for (int I = 0; I != 10; ++I) {
      DocId Doc = 1 + static_cast<DocId>(R.below(2));
      StoreResult Res = R.below(5) == 0
                            ? Store.rollback(Doc)
                            : Store.submit(
                                  Doc, makeSExprBuilder(randomExpText(R, 3)));
      if (!Res.Ok)
        continue; // failed ops (rollback past v0) emit no record
      Expected.push_back(captureState(Store, {1, 2}));
    }
    P.flush();
  }

  auto Segs = listWalSegments(Dir.path());
  ASSERT_EQ(Segs.size(), 1u);
  std::string Full = readFile(Segs[0].second);
  ASSERT_GT(Full.size(), 8u);

  TempDir Scratch;
  std::string WalCopy = Scratch.path() + "/wal-00000001.log";
  size_t PrevReplayed = 0;
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    writeFile(WalCopy, Full.substr(0, Cut));
    DocumentStore Fresh(Sig);
    RecoveryResult R = Persistence::recover(Sig, Scratch.path(), Fresh);

    // A torn tail is data loss, never corruption-into-state: no invalid
    // records, no dropped documents, and the replayed count identifies
    // the committed prefix we must have landed on.
    ASSERT_EQ(R.InvalidRecords, 0u) << "cut at " << Cut;
    ASSERT_EQ(R.DocsDropped, 0u) << "cut at " << Cut;
    ASSERT_LT(R.RecordsReplayed, Expected.size()) << "cut at " << Cut;
    ASSERT_GE(R.RecordsReplayed, PrevReplayed)
        << "replay went backwards at cut " << Cut;
    PrevReplayed = R.RecordsReplayed;

    const auto &Exp = Expected[R.RecordsReplayed];
    for (DocId Doc : {DocId(1), DocId(2)}) {
      auto It = Exp.find(Doc);
      if (It == Exp.end()) {
        ASSERT_FALSE(Fresh.contains(Doc)) << "cut at " << Cut;
        continue;
      }
      DocumentSnapshot S = Fresh.snapshot(Doc);
      ASSERT_TRUE(S.Ok) << "cut at " << Cut << ", doc " << Doc;
      ASSERT_EQ(S.Version, It->second.first) << "cut at " << Cut;
      ASSERT_EQ(S.UriText, It->second.second) << "cut at " << Cut;
      auto Stale = Fresh.checkDigests(Doc);
      ASSERT_FALSE(Stale.has_value())
          << "cut at " << Cut << ", doc " << Doc << ": " << *Stale;
    }
  }
  EXPECT_EQ(PrevReplayed, Expected.size() - 1)
      << "the intact log must replay every committed operation";
}

//===----------------------------------------------------------------------===//
// Concurrency (runs under TSan in CI): writers on many documents,
// background snapshots + compaction, explicit saves, erase/reopen
//===----------------------------------------------------------------------===//

TEST(PersistConcurrencyTest, WritersSnapshotsAndCompactionRace) {
  SignatureTable Sig = makeExpSignature();
  TempDir Dir;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  constexpr int NumThreads = 4;
  constexpr int OpsPerThread = 30;
  constexpr DocId NumDocs = 6;
  {
    DocumentStore Store(Sig);
    Persistence::Config PC;
    PC.Dir = Dir.path();
    PC.FsyncEvery = 4;
    PC.SegmentBytes = 1u << 12;
    PC.SnapshotEvery = 5;
    PC.BackgroundIntervalMs = 2; // hammer the background path
    Persistence P(Sig, PC);
    P.attach(Store);
    for (DocId Doc = 0; Doc != NumDocs; ++Doc)
      ASSERT_TRUE(Store.open(Doc, makeSExprBuilder("(Num 0)")).Ok);

    uint64_t Seed = tests::testSeed(1);
    SEED_TRACE(Seed);
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        Rng R(static_cast<uint64_t>(T) * 7919 + Seed);
        for (int I = 0; I != OpsPerThread; ++I) {
          DocId Doc = static_cast<DocId>(R.below(NumDocs));
          switch (R.below(8)) {
          case 0:
            Store.rollback(Doc); // may fail at v0; that's fine
            break;
          case 1:
            P.snapshotDocument(Doc); // racing SAVE
            break;
          case 2:
            if (T == 0) { // one thread owns erase/reopen of doc 0
              Store.erase(0);
              Store.open(0, makeSExprBuilder("(Var \"reborn\")"));
              break;
            }
            [[fallthrough]];
          default:
            Store.submit(Doc, makeSExprBuilder(randomExpText(R, 2)));
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
    std::vector<DocId> All;
    for (DocId Doc = 0; Doc != NumDocs; ++Doc)
      All.push_back(Doc);
    Expected = captureState(Store, All);
    P.flush();
  } // Persistence destructor: background thread joined, WAL synced

  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.InvalidRecords, 0u);
  EXPECT_EQ(R.DocsDropped, 0u);
  std::vector<DocId> All;
  for (DocId Doc = 0; Doc != NumDocs; ++Doc)
    All.push_back(Doc);
  expectStoreMatches(Fresh, All, Expected);
}

//===----------------------------------------------------------------------===//
// Service integration: drain hook, stats augmentation, wire verbs
//===----------------------------------------------------------------------===//

TEST(PersistServiceTest, DrainHookFlushesAndStatsCarryPersistSection) {
  SignatureTable Sig = makeExpSignature();
  TempDir Dir;
  DocumentStore Store(Sig);
  Persistence::Config PC = plainConfig(Dir.path());
  PC.FsyncEvery = 1024; // nothing syncs unless the drain hook runs
  Persistence P(Sig, PC);
  P.attach(Store);

  ServiceConfig SC;
  SC.Workers = 2;
  DiffService Service(Store, SC);
  Service.setDrainHook([&P] { P.flush(); });
  Service.setStatsAugmenter([&P] { return "\"persist\":" + P.statsJson(); });

  ASSERT_TRUE(Service.open(1, makeSExprBuilder("(a)")).Ok);
  ASSERT_TRUE(Service.submit(1, makeSExprBuilder("(Add (a) (b))")).Ok);

  std::string Json = Service.statsJson();
  EXPECT_NE(Json.find("\"persist\""), std::string::npos);
  EXPECT_NE(Json.find("\"wal\""), std::string::npos);

  uint64_t FsyncsBefore = P.stats().Wal.Fsyncs;
  Service.shutdown(); // runs the drain hook
  EXPECT_GT(P.stats().Wal.Fsyncs, FsyncsBefore);

  // Everything acknowledged before shutdown is recoverable.
  DocumentStore Fresh(Sig);
  RecoveryResult R = Persistence::recover(Sig, Dir.path(), Fresh);
  EXPECT_EQ(R.DocsRecovered, 1u);
  EXPECT_EQ(Fresh.snapshot(1).Text, "(Add (a) (b))");
}

TEST(PersistWireTest, SaveAndRecoverVerbsParse) {
  WireCommand Save = parseWireCommand("save 7");
  EXPECT_EQ(Save.K, WireCommand::Kind::Save);
  EXPECT_EQ(Save.Doc, 7u);
  EXPECT_EQ(parseWireCommand("save").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("save 7 extra").K, WireCommand::Kind::Invalid);
  EXPECT_EQ(parseWireCommand("recover").K, WireCommand::Kind::Recover);
  EXPECT_EQ(parseWireCommand("recover 1").K, WireCommand::Kind::Invalid);
}

} // namespace

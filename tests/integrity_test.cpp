//===- tests/integrity_test.cpp - End-to-end integrity tests ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the integrity subsystem (integrity/Scrubber.h) and the
/// document quarantine:
///
///  - Quarantine blast radius: a quarantined document rejects writes
///    with ErrCode::Quarantined and reads with an explicit warning,
///    while every other document keeps serving byte-identically.
///  - No false positives: seeded clean runs -- live workload, snapshot
///    rotation, interleaved scrub cycles -- never report a mismatch and
///    never quarantine.
///  - Detection and repair within one cycle: an injected in-memory
///    digest corruption is quarantined and repaired from durable state
///    (byte-identical, URI rendering + SHA-256); an injected WAL or
///    snapshot corruption on disk is detected and healed from the
///    healthy in-memory state; FaultyIoEnv's silent read-path bit flips
///    are caught by the CRC walk and heal once the faults cease.
///  - Anti-entropy: a follower whose applied tree silently diverged (no
///    gap, no version skew -- only the content digest disagrees) is
///    detected by the scrubber's shard summaries and resynced back to
///    byte-identical convergence.
///
//===----------------------------------------------------------------------===//

#include "integrity/Scrubber.h"

#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "net/EventLoop.h"
#include "persist/BinaryCodec.h"
#include "persist/IoEnv.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"
#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/ReplicationLog.h"
#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"
#include "support/Sha256.h"

#include "TestLang.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::integrity;
using namespace truediff::persist;
using namespace truediff::service;
using namespace truediff::testlang;

namespace {

/// A unique scratch directory, removed (files first) on destruction.
class TempDir {
public:
  TempDir() {
    std::string Tmpl = ::testing::TempDir() + "integrityXXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : "";
  }
  ~TempDir() {
    for (const auto &[Index, Path] : listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const SnapshotFileName &F : listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Flips one bit near the middle of the file -- past the header, inside
/// record/payload bytes, so the CRC walk must catch it.
void flipBitInFile(const std::string &Path) {
  std::string Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 16u) << Path;
  Bytes[Bytes.size() / 2] ^= 0x01;
  writeFileBytes(Path, Bytes);
}

/// Random s-expression over the test language.
std::string randomExpText(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(3) == 0) {
    switch (R.below(3)) {
    case 0:
      return "(Num " + std::to_string(R.below(100)) + ")";
    case 1:
      return "(Var \"" + std::string(1, static_cast<char>('a' + R.below(26))) +
             "\")";
    default:
      return R.below(2) != 0 ? "(a)" : "(b)";
    }
  }
  static const char *Ops[] = {"Add", "Sub", "Mul"};
  return std::string("(") + Ops[R.below(3)] + " " +
         randomExpText(R, Depth - 1) + " " + randomExpText(R, Depth - 1) + ")";
}

Persistence::Config plainConfig(const std::string &Dir) {
  Persistence::Config C;
  C.Dir = Dir;
  C.FsyncEvery = 1;
  C.SnapshotEvery = 0;        // snapshots only when a test asks
  C.BackgroundIntervalMs = 0; // no background thread
  return C;
}

/// (version, URI rendering) of every live document among \p Ids.
std::map<DocId, std::pair<uint64_t, std::string>>
captureState(const DocumentStore &Store, const std::vector<DocId> &Ids) {
  std::map<DocId, std::pair<uint64_t, std::string>> Out;
  for (DocId Doc : Ids) {
    DocumentSnapshot S = Store.snapshot(Doc);
    if (S.Ok)
      Out[Doc] = {S.Version, S.UriText};
  }
  return Out;
}

bool waitUntil(const std::function<bool()> &Pred, int TimeoutMs = 30000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

} // namespace

//===----------------------------------------------------------------------===//
// Quarantine semantics and blast radius
//===----------------------------------------------------------------------===//

TEST(QuarantineTest, BlastRadiusIsExactlyOneDocument) {
  uint64_t Seed = tests::testSeed(0x1a7e6001);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  const unsigned NumDocs = 12;
  std::vector<DocId> Ids;
  for (DocId Doc = 1; Doc <= NumDocs; ++Doc) {
    Ids.push_back(Doc);
    ASSERT_TRUE(Store.open(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Store.submit(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
  }

  // Quarantine one random victim.
  DocId Victim = 1 + R.below(NumDocs);
  auto Before = captureState(Store, Ids);
  ASSERT_TRUE(Store.quarantine(Victim, "injected for test"));
  EXPECT_EQ(Store.stats().Quarantined, 1u);

  // The victim: every write class rejected with the typed code, before
  // any state could move.
  StoreResult SubmitR = Store.submit(Victim, makeSExprBuilder("(a)"));
  ASSERT_FALSE(SubmitR.Ok);
  EXPECT_EQ(SubmitR.Code, ErrCode::Quarantined) << SubmitR.Error;
  StoreResult RollR = Store.rollback(Victim);
  ASSERT_FALSE(RollR.Ok);
  EXPECT_EQ(RollR.Code, ErrCode::Quarantined) << RollR.Error;

  // Reads still answer -- with the warning attached, never silently.
  DocumentSnapshot Snap = Store.snapshot(Victim);
  ASSERT_TRUE(Snap.Ok);
  EXPECT_TRUE(Snap.Quarantined);
  EXPECT_EQ(Snap.QuarantineReason, "injected for test");
  EXPECT_EQ(Snap.UriText, Before[Victim].second);

  // Every other document keeps serving: reads are byte-identical, and
  // writes land exactly as on a healthy store.
  for (DocId Doc : Ids) {
    if (Doc == Victim)
      continue;
    DocumentSnapshot S = Store.snapshot(Doc);
    ASSERT_TRUE(S.Ok) << "doc " << Doc;
    EXPECT_FALSE(S.Quarantined) << "doc " << Doc;
    EXPECT_EQ(S.UriText, Before[Doc].second) << "doc " << Doc;
    EXPECT_TRUE(Store.submit(Doc, makeSExprBuilder(randomExpText(R, 2))).Ok)
        << "doc " << Doc;
  }

  // Lifting the quarantine restores write service at the frozen version.
  ASSERT_TRUE(Store.clearQuarantine(Victim));
  EXPECT_EQ(Store.stats().Quarantined, 0u);
  StoreResult After = Store.submit(Victim, makeSExprBuilder("(b)"));
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.Version, Before[Victim].first + 1);
}

TEST(QuarantineTest, WireMarksQuarantinedReadsAndParsesScrub) {
  // The scrub verb parses bare (and rejects trailing operands).
  EXPECT_EQ(parseWireCommand("scrub").K, WireCommand::Kind::Scrub);
  EXPECT_EQ(parseWireCommand("scrub 7").K, WireCommand::Kind::Invalid);

  // A read served under quarantine carries the explicit marker on its
  // ok line -- the client cannot mistake it for a clean answer.
  Response R;
  R.Ok = true;
  R.Version = 4;
  R.Payload = "(a)";
  R.IntegrityWarning = "digest scrub failed: stale structure hash at uri 9";
  std::string Wire = formatWireResponse(R, WireCommand::Kind::Get);
  EXPECT_NE(Wire.find(" quarantined=1\n"), std::string::npos) << Wire;

  Response Clean;
  Clean.Ok = true;
  Clean.Version = 4;
  Clean.Payload = "(a)";
  EXPECT_EQ(formatWireResponse(Clean, WireCommand::Kind::Get)
                .find("quarantined"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// False positives: clean runs must stay clean
//===----------------------------------------------------------------------===//

TEST(ScrubberTest, CleanSeededRunsProduceZeroFindings) {
  uint64_t Base = tests::testSeed(0xc1ea6001);
  SEED_TRACE(Base);
  uint64_t Runs = tests::testIters("TRUEDIFF_SCRUB_CLEAN_RUNS", 3);

  for (uint64_t Run = 0; Run != Runs; ++Run) {
    Rng R(Base + Run * 0x9E3779B97F4A7C15ULL);
    SignatureTable Sig = makeExpSignature();
    DocumentStore Store(Sig);
    TempDir Dir;
    Persistence::Config PC = plainConfig(Dir.path());
    PC.SegmentBytes = 2048; // rotate often: many closed segments to scrub
    Persistence P(Sig, PC);
    P.attach(Store);

    Scrubber::Config SC;
    SC.CheckDisk = true;
    Scrubber Scrub(Store, SC, &P);

    // Live workload interleaved with scrub cycles and snapshots: the
    // scrubber must never flag the moving system.
    for (int Step = 0; Step != 60; ++Step) {
      DocId Doc = 1 + R.below(6);
      if (!Store.contains(Doc)) {
        ASSERT_TRUE(Store.open(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
      } else if (R.below(10) == 0) {
        Store.rollback(Doc); // may fail cleanly at version 0
      } else {
        ASSERT_TRUE(
            Store.submit(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
      }
      if (R.below(8) == 0)
        P.snapshotDocument(Doc);
      if (Step % 20 == 19)
        Scrub.scrubCycle();
    }
    Scrubber::CycleReport Last = Scrub.scrubCycle();
    EXPECT_EQ(Last.DigestMismatches, 0u) << "run " << Run;
    EXPECT_EQ(Last.NewlyQuarantined, 0u) << "run " << Run;

    Scrubber::Stats S = Scrub.stats();
    EXPECT_EQ(S.DigestMismatches, 0u) << "run " << Run;
    EXPECT_EQ(S.WalCrcErrors, 0u) << "run " << Run;
    EXPECT_EQ(S.SnapshotErrors, 0u) << "run " << Run;
    EXPECT_EQ(S.Quarantined, 0u) << "run " << Run;
    EXPECT_EQ(S.RepairsFailed, 0u) << "run " << Run;
    EXPECT_GT(S.ScrubbedDocs, 0u) << "run " << Run;
    EXPECT_EQ(Store.stats().Quarantined, 0u) << "run " << Run;
  }
}

//===----------------------------------------------------------------------===//
// In-memory corruption: detect, quarantine, repair -- one cycle
//===----------------------------------------------------------------------===//

TEST(ScrubberTest, MemoryCorruptionDetectedQuarantinedAndRepairedInOneCycle) {
  uint64_t Seed = tests::testSeed(0x1a7e6002);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  TempDir Dir;
  Persistence P(Sig, plainConfig(Dir.path()));
  P.attach(Store);

  for (DocId Doc = 1; Doc <= 3; ++Doc) {
    ASSERT_TRUE(Store.open(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
    for (int I = 0; I != 4; ++I)
      ASSERT_TRUE(Store.submit(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
  }
  DocumentSnapshot Golden = Store.snapshot(2);
  ASSERT_TRUE(Golden.Ok);
  std::string GoldenSha = Sha256::hash(Golden.UriText).toHex();

  // Silent in-memory rot: one flipped bit in the root's cached digest.
  ASSERT_TRUE(Store.corruptDigestForTest(2));
  ASSERT_TRUE(Store.checkDigests(2).has_value());

  Scrubber::Config SC;
  Scrubber Scrub(Store, SC, &P);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();

  // Detected, quarantined, and repaired within the same cycle.
  EXPECT_EQ(Rep.DigestMismatches, 1u);
  EXPECT_EQ(Rep.NewlyQuarantined, 1u);
  EXPECT_EQ(Rep.Repaired, 1u);
  EXPECT_FALSE(Store.quarantineInfo(2).has_value());
  EXPECT_EQ(Store.checkDigests(2), std::nullopt);

  // Repair is byte-identical: same version, same URI rendering, same
  // SHA-256 -- the exact state durable truth held.
  DocumentSnapshot After = Store.snapshot(2);
  ASSERT_TRUE(After.Ok);
  EXPECT_FALSE(After.Quarantined);
  EXPECT_EQ(After.Version, Golden.Version);
  EXPECT_EQ(After.UriText, Golden.UriText);
  EXPECT_EQ(Sha256::hash(After.UriText).toHex(), GoldenSha);

  // The repaired document serves writes again; the bystanders never
  // stopped.
  EXPECT_TRUE(Store.submit(2, makeSExprBuilder("(a)")).Ok);
  EXPECT_TRUE(Store.submit(1, makeSExprBuilder("(b)")).Ok);
  EXPECT_TRUE(Store.submit(3, makeSExprBuilder("(c)")).Ok);

  // A second cycle over the healed store is clean.
  Scrubber::CycleReport Again = Scrub.scrubCycle();
  EXPECT_EQ(Again.DigestMismatches, 0u);
  EXPECT_EQ(Again.NewlyQuarantined, 0u);
}

TEST(ScrubberTest, UnrepairableCorruptionStaysQuarantinedOthersKeepServing) {
  uint64_t Seed = tests::testSeed(0x1a7e6003);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  for (DocId Doc = 1; Doc <= 3; ++Doc)
    ASSERT_TRUE(Store.open(Doc, makeSExprBuilder(randomExpText(R, 3))).Ok);
  ASSERT_TRUE(Store.corruptDigestForTest(1));

  // No Persistence: there is no durable truth to repair from, so the
  // quarantine must hold instead of guessing.
  Scrubber::Config SC;
  SC.CheckDisk = false;
  Scrubber Scrub(Store, SC, nullptr);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();
  EXPECT_EQ(Rep.DigestMismatches, 1u);
  EXPECT_EQ(Rep.NewlyQuarantined, 1u);
  EXPECT_EQ(Rep.Repaired, 0u);
  EXPECT_EQ(Scrub.stats().RepairsFailed, 1u);

  // Writes rejected with the typed code; reads carry the scrubber's
  // reason; the other documents serve untouched.
  StoreResult W = Store.submit(1, makeSExprBuilder("(a)"));
  ASSERT_FALSE(W.Ok);
  EXPECT_EQ(W.Code, ErrCode::Quarantined);
  DocumentSnapshot S = Store.snapshot(1);
  ASSERT_TRUE(S.Ok);
  EXPECT_TRUE(S.Quarantined);
  EXPECT_NE(S.QuarantineReason.find("digest scrub failed"), std::string::npos);
  EXPECT_TRUE(Store.submit(2, makeSExprBuilder("(b)")).Ok);
  EXPECT_TRUE(Store.submit(3, makeSExprBuilder("(c)")).Ok);

  // The quarantined doc is excluded from anti-entropy summaries: its
  // digest is known-rotten, broadcasting it would trigger resyncs
  // against corrupt truth.
  std::vector<replica::ShardSummaryMsg> Sent;
  Scrubber::Config BC;
  BC.CheckDisk = false;
  BC.NumShards = 1;
  BC.Broadcast = [&](const replica::ShardSummaryMsg &M) { Sent.push_back(M); };
  BC.CurrentSeq = [] { return uint64_t(0); };
  Scrubber Scrub2(Store, BC, nullptr);
  Scrub2.scrubCycle();
  ASSERT_EQ(Sent.size(), 1u);
  for (const replica::ShardSummaryMsg::Entry &E : Sent[0].Entries)
    EXPECT_NE(E.Doc, 1u);
  EXPECT_EQ(Sent[0].Entries.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Disk corruption: detect and heal from the healthy in-memory state
//===----------------------------------------------------------------------===//

TEST(ScrubberTest, ClosedWalCorruptionDetectedAndHealedFromMemory) {
  uint64_t Seed = tests::testSeed(0x1a7e6004);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  TempDir Dir;
  Persistence::Config PC = plainConfig(Dir.path());
  PC.SegmentBytes = 1024; // rotate quickly: closed segments to corrupt
  Persistence P(Sig, PC);
  P.attach(Store);

  ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
  ASSERT_TRUE(Store.open(2, makeSExprBuilder(randomExpText(R, 3))).Ok);
  while (P.stats().CurrentSegment < 2) {
    ASSERT_TRUE(
        Store.submit(1 + R.below(2), makeSExprBuilder(randomExpText(R, 3)))
            .Ok);
  }

  // Flip one bit in the middle of the oldest closed segment.
  auto Segments = listWalSegments(Dir.path());
  ASSERT_GE(Segments.size(), 2u);
  flipBitInFile(Segments.front().second);
  if (::testing::Test::HasFatalFailure())
    return;

  Scrubber::Config SC;
  Scrubber Scrub(Store, SC, &P);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();
  EXPECT_EQ(Rep.WalCrcErrors, 1u);
  EXPECT_GE(Rep.Repaired, 1u) << "fresh snapshots + compaction must kill "
                                 "the dead segment in the same cycle";
  EXPECT_EQ(Rep.DigestMismatches, 0u); // memory was never sick
  EXPECT_EQ(Store.stats().Quarantined, 0u);

  // The corrupt segment is gone (superseded by snapshots, compacted).
  for (const auto &[Index, Path] : listWalSegments(Dir.path()))
    EXPECT_NE(Path, Segments.front().second);

  // Durable truth survived the damage: recovery of the directory equals
  // the live state byte for byte.
  auto Live = captureState(Store, {1, 2});
  DocumentStore Fresh(Sig);
  Persistence::recover(Sig, Dir.path(), Fresh);
  for (DocId Doc : {DocId(1), DocId(2)}) {
    DocumentSnapshot FS = Fresh.snapshot(Doc);
    ASSERT_TRUE(FS.Ok) << "doc " << Doc;
    EXPECT_EQ(FS.Version, Live[Doc].first) << "doc " << Doc;
    EXPECT_EQ(FS.UriText, Live[Doc].second) << "doc " << Doc;
  }

  // Steady state: the next cycle has nothing left to flag.
  Scrubber::CycleReport Again = Scrub.scrubCycle();
  EXPECT_EQ(Again.WalCrcErrors, 0u);
  EXPECT_EQ(Again.SnapshotErrors, 0u);
}

TEST(ScrubberTest, CorruptSnapshotIsRewrittenInPlace) {
  uint64_t Seed = tests::testSeed(0x1a7e6005);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  TempDir Dir;
  Persistence P(Sig, plainConfig(Dir.path()));
  P.attach(Store);

  ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
  ASSERT_TRUE(P.snapshotDocument(1));

  auto Snaps = listSnapshotFiles(Dir.path());
  ASSERT_EQ(Snaps.size(), 1u);
  flipBitInFile(Snaps[0].Path);
  if (::testing::Test::HasFatalFailure())
    return;
  ASSERT_FALSE(readSnapshotFile(Snaps[0].Path).Ok);

  Scrubber::Config SC;
  Scrubber Scrub(Store, SC, &P);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();
  EXPECT_EQ(Rep.SnapshotErrors, 1u);
  EXPECT_GE(Rep.Repaired, 1u);

  // The repair pass re-snapshotted the document at the same sequence
  // number, renaming a valid file over the corrupt one: same path, now
  // decodable, and recovery trusts it again.
  ReadSnapshotResult Healed = readSnapshotFile(Snaps[0].Path);
  EXPECT_TRUE(Healed.Ok) << Healed.Error;

  DocumentStore Fresh(Sig);
  Persistence::recover(Sig, Dir.path(), Fresh);
  DocumentSnapshot Live = Store.snapshot(1);
  DocumentSnapshot FS = Fresh.snapshot(1);
  ASSERT_TRUE(FS.Ok);
  EXPECT_EQ(FS.Version, Live.Version);
  EXPECT_EQ(FS.UriText, Live.UriText);

  Scrubber::CycleReport Again = Scrub.scrubCycle();
  EXPECT_EQ(Again.SnapshotErrors, 0u);
}

TEST(ScrubberTest, SilentReadFlipsAreDetectedAndHealWhenFaultsCease) {
  uint64_t Seed = tests::testSeed(0x1a7e6006);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = makeExpSignature();
  DocumentStore Store(Sig);
  TempDir Dir;
  Persistence::Config PC = plainConfig(Dir.path());
  PC.SegmentBytes = 1024;
  Persistence P(Sig, PC);
  P.attach(Store);

  ASSERT_TRUE(Store.open(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
  while (P.stats().CurrentSegment < 1)
    ASSERT_TRUE(Store.submit(1, makeSExprBuilder(randomExpText(R, 3))).Ok);
  ASSERT_TRUE(P.snapshotDocument(1));

  // The scrubber reads through a decaying medium: every readFile comes
  // back with one silently flipped bit. No syscall fails -- only the
  // CRC walk can see it.
  FaultyIoEnv::FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.ReadFlipPermille = 1000;
  FaultyIoEnv Faulty(Plan);

  Scrubber::Config SC;
  SC.Env = &Faulty;
  Scrubber Scrub(Store, SC, &P);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();
  EXPECT_GE(Rep.WalCrcErrors + Rep.SnapshotErrors, 1u)
      << "a flipped read must be detected within the cycle that saw it";
  EXPECT_GT(Faulty.counters().ReadsCorrupted, 0u);
  // Disk-pass faults never quarantine documents: memory is healthy.
  EXPECT_EQ(Rep.DigestMismatches, 0u);
  EXPECT_EQ(Store.stats().Quarantined, 0u);

  // Faults cease; the damage ledger drains -- every remembered path
  // either re-reads clean or was superseded and deleted.
  Faulty.heal();
  Scrub.scrubCycle();
  Scrubber::CycleReport Clean = Scrub.scrubCycle();
  EXPECT_EQ(Clean.WalCrcErrors, 0u);
  EXPECT_EQ(Clean.SnapshotErrors, 0u);
  EXPECT_EQ(Clean.DigestMismatches, 0u);
}

//===----------------------------------------------------------------------===//
// Anti-entropy: silent follower divergence
//===----------------------------------------------------------------------===//

namespace {

/// A TreeBuilder that decodes a binary tree blob with fresh URIs.
TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](TreeContext &Ctx) -> BuildResult {
    DecodeTreeResult D = decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, ErrCode::MalformedFrame};
    return {D.Root, "", ErrCode::None};
  };
}

/// A leader node: store + replication log + leader endpoint on its own
/// event loop, listening on an ephemeral loopback port.
struct LeaderNode {
  const SignatureTable &Sig;
  DocumentStore Store;
  replica::ReplicationLog Log;
  net::EventLoop Loop;
  std::unique_ptr<replica::Leader> Lead;
  bool Started = false;

  explicit LeaderNode(const SignatureTable &Sig)
      : Sig(Sig), Store(Sig), Log(Store, replica::ReplicationLog::Config{}) {
    replica::Leader::Config C;
    C.Epoch = 1;
    Lead = std::make_unique<replica::Leader>(Loop, Log, C);
    Log.attach();
    std::string Err;
    Started = Lead->start(&Err);
    EXPECT_TRUE(Started) << Err;
    Loop.start();
  }

  ~LeaderNode() { Loop.stop(); }
};

struct FollowerNode {
  net::EventLoop Loop;
  std::unique_ptr<replica::Follower> F;

  explicit FollowerNode(const SignatureTable &Sig) {
    Loop.start();
    F = std::make_unique<replica::Follower>(Loop, Sig, replica::Follower::Config{});
  }
  ~FollowerNode() {
    F->disconnect();
    Loop.stop();
  }
};

/// Every live leader document reads byte-identically on the follower.
::testing::AssertionResult converged(LeaderNode &L, replica::Follower &F,
                                     uint64_t NumDocs) {
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    DocumentSnapshot S = L.Store.snapshot(Doc);
    if (!S.Ok)
      continue;
    replica::Follower::ReadResult RR = F.read(Doc);
    if (!RR.Ok)
      return ::testing::AssertionFailure() << "doc " << Doc << ": " << RR.Error;
    if (RR.Version != S.Version || RR.UriText != S.UriText ||
        RR.DigestHex != Sha256::hash(S.UriText).toHex())
      return ::testing::AssertionFailure() << "doc " << Doc << " diverged";
  }
  return ::testing::AssertionSuccess();
}

} // namespace

TEST(AntiEntropyTest, SilentFollowerDivergenceIsDetectedAndResynced) {
  uint64_t Seed = tests::testSeed(0x1a7e6007);
  SEED_TRACE(Seed);
  Rng R(Seed);

  SignatureTable Sig = json::makeJsonSignature();
  LeaderNode L(Sig);
  ASSERT_TRUE(L.Started);
  FollowerNode F(Sig);
  std::string Err;
  ASSERT_TRUE(F.F->connectTo("127.0.0.1", L.Lead->port(), &Err)) << Err;

  // A small JSON workload over a handful of documents.
  const uint64_t NumDocs = 4;
  TreeContext Ctx(Sig);
  std::unordered_map<uint64_t, Tree *> Model;
  corpus::JsonGenOptions Opts;
  Opts.MaxDepth = 3;
  Opts.MaxFanout = 4;
  for (uint64_t Doc = 1; Doc <= NumDocs; ++Doc) {
    Tree *T = corpus::generateJson(Ctx, R, Opts);
    ASSERT_NE(T, nullptr);
    ASSERT_TRUE(
        L.Store.open(Doc, blobBuilder(Sig, encodeTree(Sig, T))).Ok);
    Model[Doc] = T;
  }
  for (int I = 0; I != 40; ++I) {
    uint64_t Doc = 1 + R.below(NumDocs);
    Tree *Next = corpus::mutateJson(Ctx, R, Model[Doc]);
    ASSERT_NE(Next, nullptr);
    ASSERT_TRUE(
        L.Store.submit(Doc, blobBuilder(Sig, encodeTree(Sig, Next))).Ok);
    Model[Doc] = Next;
  }
  ASSERT_TRUE(waitUntil(
      [&] { return F.F->caughtUp() && F.F->lastSeq() == L.Log.currentSeq(); }));
  ASSERT_TRUE(converged(L, *F.F, NumDocs));

  // Silently corrupt one applied literal on the follower: version and
  // seq untouched, so no gap or version check can ever notice.
  uint64_t Victim = 0;
  for (uint64_t Doc = 1; Doc <= NumDocs && Victim == 0; ++Doc)
    if (F.F->corruptDocForTest(Doc))
      Victim = Doc;
  ASSERT_NE(Victim, 0u) << "no document with a mutable literal";
  ASSERT_FALSE(converged(L, *F.F, NumDocs))
      << "corruption must actually diverge the follower";

  // One scrub cycle on the leader broadcasts the digest summaries; the
  // follower detects the mismatch and resyncs back to byte identity.
  Scrubber::Config SC;
  SC.CheckDisk = false;
  SC.NumShards = 2;
  SC.Broadcast = [&](const replica::ShardSummaryMsg &M) {
    L.Lead->broadcastSummary(M);
  };
  SC.CurrentSeq = [&] { return L.Log.currentSeq(); };
  SC.ResyncsServed = [&] { return L.Lead->stats().ResyncsServed; };
  Scrubber Scrub(L.Store, SC, nullptr);
  Scrubber::CycleReport Rep = Scrub.scrubCycle();
  EXPECT_GE(Rep.SummariesSent, 1u);

  ASSERT_TRUE(waitUntil([&] {
    return F.F->stats().SummaryMismatches >= 1 &&
           bool(converged(L, *F.F, NumDocs));
  }));
  replica::Follower::Stats FS = F.F->stats();
  EXPECT_GE(FS.SummariesReceived, 1u);
  EXPECT_GE(FS.SummaryMismatches, 1u);
  EXPECT_GE(FS.ResyncsRequested, 1u);
  EXPECT_GE(L.Lead->stats().ResyncsServed, 1u);
  EXPECT_GE(Scrub.stats().ResyncsTriggered, 1u);

  // Clean steady state: further cycles produce summaries but no
  // mismatches -- anti-entropy does not thrash a converged replica.
  uint64_t MismatchesBefore = F.F->stats().SummaryMismatches;
  Scrub.scrubCycle();
  ASSERT_TRUE(waitUntil([&] {
    return F.F->stats().SummariesReceived >= FS.SummariesReceived + 1;
  }));
  EXPECT_EQ(F.F->stats().SummaryMismatches, MismatchesBefore);
  EXPECT_TRUE(converged(L, *F.F, NumDocs));
}

//===- tests/truediff_test.cpp - Unit tests for the truediff algorithm -----===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises truediff on the paper's running examples and checks the three
/// invariants that Conjectures 4.2/4.3 claim for every diff:
///   1. the edit script is well-typed,
///   2. patching the source MTree yields the target tree,
///   3. the returned patched tree equals the target tree.
///
//===----------------------------------------------------------------------===//

#include "truediff/TrueDiff.h"

#include "tree/SExpr.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

class TrueDiffTest : public ::testing::Test {
protected:
  TrueDiffTest() : Sig(makeExpSignature()), Ctx(Sig) {}

  /// Runs truediff and verifies the script invariants. \p Source is
  /// consumed, as documented in TrueDiff::compareTo.
  DiffResult checkedDiff(Tree *Source, Tree *Target,
                         TrueDiffOptions Opts = TrueDiffOptions()) {
    MTree Before = MTree::fromTree(Sig, Source);
    TrueDiff Diff(Ctx, Opts);
    DiffResult R = Diff.compareTo(Source, Target);

    EXPECT_TRUE(treeEqualsModuloUris(R.Patched, Target))
        << "patched: " << printSExpr(Sig, R.Patched)
        << "\ntarget:  " << printSExpr(Sig, Target);
    EXPECT_TRUE(R.Patched->equalsModuloUris(*Target))
        << "stale derived data on patched tree";

    LinearTypeChecker Checker(Sig);
    auto TC = Checker.checkWellTyped(R.Script);
    EXPECT_TRUE(TC.Ok) << TC.Error << "\nscript:\n"
                       << R.Script.toString(Sig);

    auto PR = Before.patchChecked(R.Script);
    EXPECT_TRUE(PR.Ok) << PR.Error << "\nscript:\n"
                       << R.Script.toString(Sig);
    EXPECT_TRUE(Before.equalsTree(Target))
        << "MTree after patch: " << Before.toString();
    return R;
  }

  SignatureTable Sig;
  TreeContext Ctx;
};

TEST_F(TrueDiffTest, IdenticalTreesYieldEmptyScript) {
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *B = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  DiffResult R = checkedDiff(A, B);
  EXPECT_EQ(R.Script.size(), 0u);
}

TEST_F(TrueDiffTest, PaperSection2SwapExample) {
  // diff(Add(Sub(a,b), Mul(c,d)), Add(d, Mul(c, Sub(a,b)))) must produce
  // the minimal 4-edit move script of Section 2.
  Tree *A = leaf(Ctx, "a");
  Tree *B = leaf(Ctx, "b");
  Tree *C = leaf(Ctx, "c");
  Tree *D = leaf(Ctx, "d");
  Tree *SubT = sub(Ctx, A, B);
  Tree *MulT = mul(Ctx, C, D);
  Tree *Source = add(Ctx, SubT, MulT);

  Tree *Target = add(Ctx, leaf(Ctx, "d"),
                     mul(Ctx, leaf(Ctx, "c"),
                         sub(Ctx, leaf(Ctx, "a"), leaf(Ctx, "b"))));

  URI SubUri = SubT->uri(), DUri = D->uri();
  URI AddUri = Source->uri(), MulUri = MulT->uri();

  DiffResult R = checkedDiff(Source, Target);
  ASSERT_EQ(R.Script.size(), 4u) << R.Script.toString(Sig);
  EXPECT_EQ(R.Script.coalescedSize(), 4u);

  const auto &E = R.Script.edits();
  // Negative edits first: both detaches, in traversal order.
  EXPECT_EQ(E[0].Kind, EditKind::Detach);
  EXPECT_EQ(E[0].Node.Uri, SubUri);
  EXPECT_EQ(E[0].Parent.Uri, AddUri);
  EXPECT_EQ(E[1].Kind, EditKind::Detach);
  EXPECT_EQ(E[1].Node.Uri, DUri);
  EXPECT_EQ(E[1].Parent.Uri, MulUri);
  // Then the crosswise attaches.
  EXPECT_EQ(E[2].Kind, EditKind::Attach);
  EXPECT_EQ(E[2].Node.Uri, DUri);
  EXPECT_EQ(E[2].Parent.Uri, AddUri);
  EXPECT_EQ(E[3].Kind, EditKind::Attach);
  EXPECT_EQ(E[3].Node.Uri, SubUri);
  EXPECT_EQ(E[3].Parent.Uri, MulUri);
}

TEST_F(TrueDiffTest, PaperSection2ExcessiveDemandExample) {
  // diff(Add(a,b), Add(b,b)): b cannot be reused twice; one fresh b is
  // loaded while a is unloaded.
  Tree *A = leaf(Ctx, "a");
  Tree *B = leaf(Ctx, "b");
  Tree *Source = add(Ctx, A, B);
  Tree *Target = add(Ctx, leaf(Ctx, "b"), leaf(Ctx, "b"));

  URI AUri = A->uri();
  DiffResult R = checkedDiff(Source, Target);
  ASSERT_EQ(R.Script.size(), 4u) << R.Script.toString(Sig);
  EXPECT_EQ(R.Script.coalescedSize(), 2u);

  const auto &E = R.Script.edits();
  EXPECT_EQ(E[0].Kind, EditKind::Detach);
  EXPECT_EQ(E[0].Node.Uri, AUri);
  EXPECT_EQ(E[1].Kind, EditKind::Unload);
  EXPECT_EQ(E[1].Node.Uri, AUri);
  EXPECT_EQ(E[2].Kind, EditKind::Load);
  EXPECT_EQ(E[3].Kind, EditKind::Attach);
  EXPECT_EQ(E[2].Node.Uri, E[3].Node.Uri);
}

TEST_F(TrueDiffTest, LiteralChangeYieldsSingleUpdate) {
  Tree *Source = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *Target = add(Ctx, num(Ctx, 1), num(Ctx, 99));
  DiffResult R = checkedDiff(Source, Target);
  ASSERT_EQ(R.Script.size(), 1u) << R.Script.toString(Sig);
  EXPECT_EQ(R.Script[0].Kind, EditKind::Update);
  EXPECT_EQ(R.Script[0].Lits[0].Value, Literal(int64_t(99)));
  EXPECT_EQ(R.Script[0].OldLits[0].Value, Literal(int64_t(2)));
}

TEST_F(TrueDiffTest, DeepLiteralChangeYieldsSingleUpdate) {
  Tree *Source =
      mul(Ctx, call(Ctx, "f", add(Ctx, var(Ctx, "x"), num(Ctx, 7))),
          num(Ctx, 0));
  Tree *Target =
      mul(Ctx, call(Ctx, "f", add(Ctx, var(Ctx, "y"), num(Ctx, 7))),
          num(Ctx, 0));
  DiffResult R = checkedDiff(Source, Target);
  ASSERT_EQ(R.Script.size(), 1u) << R.Script.toString(Sig);
  EXPECT_EQ(R.Script[0].Kind, EditKind::Update);
}

TEST_F(TrueDiffTest, Section4RunningExample) {
  // this = Add(Call("f",Num(1)), Num(2)),
  // that = Add(Call("g",Num(1)), Sub(Num(2),Num(2))).
  // Expected: update Call's name; move Num(2) under a loaded Sub; load one
  // extra Num(2) (Section 4.4 walkthrough).
  Tree *CallT = call(Ctx, "f", num(Ctx, 1));
  Tree *Num2 = num(Ctx, 2);
  Tree *Source = add(Ctx, CallT, Num2);
  Tree *Target = add(Ctx, call(Ctx, "g", num(Ctx, 1)),
                     sub(Ctx, num(Ctx, 2), num(Ctx, 2)));

  URI CallUri = CallT->uri(), Num2Uri = Num2->uri();
  DiffResult R = checkedDiff(Source, Target);

  // One update (f -> g), one detach of Num(2), one load of Sub, one load
  // of the second Num(2), one attach of Sub.
  size_t Updates = 0, Detaches = 0, Loads = 0, Attaches = 0, Unloads = 0;
  bool CallUpdated = false, Num2Detached = false;
  for (const Edit &E : R.Script.edits()) {
    switch (E.Kind) {
    case EditKind::Update:
      ++Updates;
      CallUpdated |= E.Node.Uri == CallUri;
      break;
    case EditKind::Detach:
      ++Detaches;
      Num2Detached |= E.Node.Uri == Num2Uri;
      break;
    case EditKind::Load:
      ++Loads;
      break;
    case EditKind::Attach:
      ++Attaches;
      break;
    case EditKind::Unload:
      ++Unloads;
      break;
    }
  }
  EXPECT_EQ(Updates, 1u);
  EXPECT_TRUE(CallUpdated);
  EXPECT_EQ(Detaches, 1u);
  EXPECT_TRUE(Num2Detached);
  EXPECT_EQ(Loads, 2u); // Sub and one Num(2)
  EXPECT_EQ(Attaches, 1u);
  EXPECT_EQ(Unloads, 0u);
}

TEST_F(TrueDiffTest, PrefersExactCopyOverStructuralCandidate) {
  // Two structurally equivalent candidates Num(5) and Num(7); the target
  // demands Num(7) somewhere else. With literal preference the exact copy
  // moves and no update is needed.
  Tree *N5 = num(Ctx, 5);
  Tree *N7 = num(Ctx, 7);
  Tree *Source = add(Ctx, sub(Ctx, N5, N7), num(Ctx, 0));
  Tree *Target = add(Ctx, num(Ctx, 0), call(Ctx, "k", num(Ctx, 7)));
  URI N7Uri = N7->uri();

  DiffResult R = checkedDiff(Source, Target);
  bool N7Reused = false;
  for (const Edit &E : R.Script.edits()) {
    EXPECT_NE(E.Kind, EditKind::Update) << R.Script.toString(Sig);
    if (E.Kind == EditKind::Attach && E.Node.Uri == N7Uri)
      N7Reused = true;
    if (E.Kind == EditKind::Load && !E.Kids.empty())
      for (const KidRef &K : E.Kids)
        N7Reused |= K.Uri == N7Uri;
  }
  EXPECT_TRUE(N7Reused) << R.Script.toString(Sig);
}

TEST_F(TrueDiffTest, WithoutPreferenceStructuralCandidateNeedsUpdate) {
  // Ablation (DESIGN.md E9): disabling the preferred pass may pick the
  // wrong copy and pay an update; correctness must still hold.
  Tree *Source = add(Ctx, sub(Ctx, num(Ctx, 5), num(Ctx, 7)), num(Ctx, 0));
  Tree *Target = add(Ctx, num(Ctx, 0), call(Ctx, "k", num(Ctx, 7)));
  TrueDiffOptions Opts;
  Opts.PreferLiteralMatches = false;
  checkedDiff(Source, Target, Opts);
}

TEST_F(TrueDiffTest, FifoOrderStaysCorrect) {
  // Ablation (DESIGN.md E10): FIFO instead of highest-first still
  // produces correct (if possibly less concise) scripts.
  Tree *Source = add(Ctx, sub(Ctx, num(Ctx, 1), num(Ctx, 2)),
                     mul(Ctx, num(Ctx, 3), num(Ctx, 4)));
  Tree *Target = mul(Ctx, sub(Ctx, num(Ctx, 1), num(Ctx, 2)),
                     add(Ctx, num(Ctx, 4), num(Ctx, 3)));
  TrueDiffOptions Opts;
  Opts.HeightPriority = false;
  checkedDiff(Source, Target, Opts);
}

TEST_F(TrueDiffTest, CompleteReplacement) {
  Tree *Source = num(Ctx, 1);
  Tree *Target = call(Ctx, "f", var(Ctx, "x"));
  DiffResult R = checkedDiff(Source, Target);
  // detach+unload Num; load Var, Call; attach Call = 2 coalesced + 1 load.
  EXPECT_EQ(R.Script.coalescedSize(), 3u) << R.Script.toString(Sig);
}

TEST_F(TrueDiffTest, MoveSubtreeDeeper) {
  Tree *Payload = mul(Ctx, var(Ctx, "v"), num(Ctx, 3));
  Tree *Source = add(Ctx, Payload, num(Ctx, 0));
  Tree *Target =
      add(Ctx, num(Ctx, 0),
          call(Ctx, "wrap", mul(Ctx, var(Ctx, "v"), num(Ctx, 3))));
  URI PayloadUri = Payload->uri();
  DiffResult R = checkedDiff(Source, Target);
  bool Moved = false;
  for (const Edit &E : R.Script.edits()) {
    if (E.Kind == EditKind::Load)
      for (const KidRef &K : E.Kids)
        Moved |= K.Uri == PayloadUri;
  }
  EXPECT_TRUE(Moved) << R.Script.toString(Sig);
}

TEST_F(TrueDiffTest, ChainedDiffsReusePatchedTree) {
  // Incremental usage: the patched tree of one diff is the source of the
  // next (Section 6, incremental computing).
  Tree *V1 = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *V2 = add(Ctx, num(Ctx, 1), mul(Ctx, num(Ctx, 2), num(Ctx, 3)));
  Tree *V3 = add(Ctx, mul(Ctx, num(Ctx, 2), num(Ctx, 3)), num(Ctx, 1));

  DiffResult R1 = checkedDiff(V1, V2);
  DiffResult R2 = checkedDiff(R1.Patched, V3);
  EXPECT_TRUE(treeEqualsModuloUris(R2.Patched, V3));
}

TEST_F(TrueDiffTest, UrisInPatchedTreeAreUnique) {
  Tree *Source = add(Ctx, num(Ctx, 1), add(Ctx, num(Ctx, 1), num(Ctx, 1)));
  Tree *Target = add(Ctx, add(Ctx, num(Ctx, 1), num(Ctx, 1)),
                     add(Ctx, num(Ctx, 1), num(Ctx, 1)));
  DiffResult R = checkedDiff(Source, Target);
  std::unordered_set<URI> Seen;
  R.Patched->foreachTree([&](Tree *T) {
    EXPECT_TRUE(Seen.insert(T->uri()).second)
        << "duplicate URI " << T->uri();
  });
}

TEST_F(TrueDiffTest, SubtypingFlowsThroughThePipeline) {
  // A signature with a proper subsort hierarchy: Lit <: Exp, so literal
  // nodes may sit wherever an Exp is demanded. Exercises the T <: T'
  // premises of T-Attach/T-Load end to end.
  SignatureTable S;
  S.declareSubsort("Lit", "Exp");
  S.defineTag("IntL", "Lit", {}, {{"v", LitKind::Int}});
  S.defineTag("Neg", "Exp", {{"e", "Exp"}}, {});
  S.defineTag("Plus", "Exp", {{"l", "Exp"}, {"r", "Exp"}}, {});
  TreeContext C(S);

  auto IntL = [&](int64_t V) { return C.make("IntL", {}, {Literal(V)}); };
  Tree *Source = C.make("Plus", {C.make("Neg", {IntL(1)}, {}), IntL(2)}, {});
  Tree *Target = C.make("Plus", {IntL(2), C.make("Neg", {IntL(1)}, {})}, {});

  MTree M = MTree::fromTree(S, Source);
  TrueDiff Differ(C);
  DiffResult R = Differ.compareTo(Source, Target);

  LinearTypeChecker Checker(S);
  auto TC = Checker.checkWellTyped(R.Script);
  ASSERT_TRUE(TC.Ok) << TC.Error;
  ASSERT_TRUE(M.patchChecked(R.Script).Ok);
  EXPECT_TRUE(M.equalsTree(Target));
  // The swap reuses both subtrees: a 4-edit move script, with Lit-typed
  // roots attached to Exp-typed slots.
  EXPECT_EQ(R.Script.size(), 4u) << R.Script.toString(S);
}

TEST_F(TrueDiffTest, SupersortRootRejectedInSubsortSlot) {
  // The converse direction must fail in the checker: attaching an
  // Exp-typed root into a Lit-only slot violates T-Attach.
  SignatureTable S;
  S.declareSubsort("Lit", "Exp");
  S.defineTag("IntL", "Lit", {}, {{"v", LitKind::Int}});
  S.defineTag("Neg", "Exp", {{"e", "Exp"}}, {});
  S.defineTag("LitBox", "Exp", {{"payload", "Lit"}}, {});

  EditScript Bad;
  Bad.append(Edit::detach(NodeRef{S.lookup("IntL"), 2}, S.lookup("payload"),
                          NodeRef{S.lookup("LitBox"), 1}));
  Bad.append(Edit::detach(NodeRef{S.lookup("IntL"), 4}, S.lookup("e"),
                          NodeRef{S.lookup("Neg"), 3}));
  // Load an Exp-typed Neg around IntL_4 and attach it into the Lit slot.
  Bad.append(Edit::load(NodeRef{S.lookup("Neg"), 9},
                        {KidRef{S.lookup("e"), 4}}, {}));
  Bad.append(Edit::attach(NodeRef{S.lookup("Neg"), 9}, S.lookup("payload"),
                          NodeRef{S.lookup("LitBox"), 1}));
  Bad.append(Edit::attach(NodeRef{S.lookup("IntL"), 2}, S.lookup("e"),
                          NodeRef{S.lookup("Neg"), 3}));
  LinearTypeChecker Checker(S);
  LinearState State = LinearState::closed(S);
  auto TC = Checker.checkScript(Bad, State);
  EXPECT_FALSE(TC.Ok);
  EXPECT_NE(TC.Error.find("not a subsort"), std::string::npos) << TC.Error;
}

TEST_F(TrueDiffTest, EmptyScriptForLargeIdenticalTrees) {
  // Structure sharing must detect equality at the top immediately.
  Tree *A = num(Ctx, 0);
  Tree *B = num(Ctx, 0);
  for (int I = 0; I != 200; ++I) {
    A = add(Ctx, A, num(Ctx, I));
    B = add(Ctx, B, num(Ctx, I));
  }
  DiffResult R = checkedDiff(A, B);
  EXPECT_EQ(R.Script.size(), 0u);
}

} // namespace

//===- tests/truediff_property_test.cpp - Property tests for truediff ------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests (parameterized over RNG seeds): for random source
/// and target trees, every truediff script
///   - is well-typed (Conjecture 4.2),
///   - transforms the source MTree into the target tree (Conjecture 4.3),
///   - produces a patched tree equal to the target with unique URIs,
/// and the conciseness is bounded by the trivial rebuild script.
///
//===----------------------------------------------------------------------===//

#include "truediff/TrueDiff.h"

#include "support/Rng.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

/// Generates a random expression tree of at most \p MaxDepth.
Tree *randomExp(TreeContext &Ctx, Rng &R, int MaxDepth) {
  static const char *Vars[] = {"x", "y", "z", "acc", "tmp"};
  static const char *Funcs[] = {"f", "g", "len", "sqrt"};
  if (MaxDepth <= 1 || R.chance(25)) {
    switch (R.below(3)) {
    case 0:
      return num(Ctx, R.range(0, 9));
    case 1:
      return var(Ctx, Vars[R.below(5)]);
    default:
      return leaf(Ctx, (const char *[]){"a", "b", "c", "d"}[R.below(4)]);
    }
  }
  switch (R.below(4)) {
  case 0:
    return add(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  case 1:
    return sub(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  case 2:
    return mul(Ctx, randomExp(Ctx, R, MaxDepth - 1),
               randomExp(Ctx, R, MaxDepth - 1));
  default:
    return call(Ctx, Funcs[R.below(4)], randomExp(Ctx, R, MaxDepth - 1));
  }
}

/// Produces a mutated copy of \p T: each node has a small chance to be
/// replaced, literal-edited, or child-swapped, simulating a code change.
Tree *mutateExp(TreeContext &Ctx, Rng &R, const Tree *T, unsigned Percent) {
  if (R.chance(Percent))
    return randomExp(Ctx, R, 3);
  const SignatureTable &Sig = Ctx.signatures();
  std::vector<Tree *> Kids;
  for (size_t I = 0, E = T->arity(); I != E; ++I)
    Kids.push_back(mutateExp(Ctx, R, T->kid(I), Percent));
  if (Kids.size() == 2 && R.chance(Percent))
    std::swap(Kids[0], Kids[1]);
  std::vector<Literal> Lits = T->lits();
  if (!Lits.empty() && R.chance(Percent) &&
      Lits[0].kind() == LitKind::Int)
    Lits[0] = Literal(R.range(0, 9));
  (void)Sig;
  return Ctx.make(T->tag(), std::move(Kids), std::move(Lits));
}

class TrueDiffPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrueDiffPropertyTest, RandomPairInvariants) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam());

  Tree *Source = randomExp(Ctx, R, 7);
  Tree *Target = R.chance(50) ? mutateExp(Ctx, R, Source, 10)
                              : randomExp(Ctx, R, 7);

  uint64_t SourceSize = Source->size();
  uint64_t TargetSize = Target->size();

  MTree Before = MTree::fromTree(Sig, Source);
  TrueDiff Diff(Ctx);
  DiffResult Result = Diff.compareTo(Source, Target);

  // Conjecture 4.2: the script is well-typed.
  LinearTypeChecker Checker(Sig);
  auto TC = Checker.checkWellTyped(Result.Script);
  ASSERT_TRUE(TC.Ok) << TC.Error << "\n" << Result.Script.toString(Sig);

  // Conjecture 4.3: patching the source MTree yields the target.
  auto PR = Before.patchChecked(Result.Script);
  ASSERT_TRUE(PR.Ok) << PR.Error;
  EXPECT_TRUE(Before.equalsTree(Target));

  // The patched tree equals the target and has unique URIs.
  EXPECT_TRUE(treeEqualsModuloUris(Result.Patched, Target));
  EXPECT_TRUE(Result.Patched->equalsModuloUris(*Target));
  std::unordered_set<URI> Seen;
  Result.Patched->foreachTree(
      [&](Tree *T) { EXPECT_TRUE(Seen.insert(T->uri()).second); });

  // Conciseness sanity: never worse than delete-everything plus
  // load-everything plus the two root edits.
  EXPECT_LE(Result.Script.size(), SourceSize + TargetSize + 2);
}

TEST_P(TrueDiffPropertyTest, SelfDiffIsEmptyAfterCopy) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 7919 + 13);
  Tree *Source = randomExp(Ctx, R, 6);
  Tree *Copy = Ctx.deepCopy(Source);
  TrueDiff Diff(Ctx);
  DiffResult Result = Diff.compareTo(Source, Copy);
  EXPECT_EQ(Result.Script.size(), 0u) << Result.Script.toString(Sig);
}

TEST_P(TrueDiffPropertyTest, AblationsPreserveCorrectness) {
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 31337 + 7);

  for (int Mode = 0; Mode != 3; ++Mode) {
    Tree *Source = randomExp(Ctx, R, 6);
    Tree *Target = mutateExp(Ctx, R, Source, 15);
    MTree Before = MTree::fromTree(Sig, Source);

    TrueDiffOptions Opts;
    Opts.PreferLiteralMatches = Mode != 1;
    Opts.HeightPriority = Mode != 2;
    TrueDiff Diff(Ctx, Opts);
    DiffResult Result = Diff.compareTo(Source, Target);

    LinearTypeChecker Checker(Sig);
    auto TC = Checker.checkWellTyped(Result.Script);
    ASSERT_TRUE(TC.Ok) << "mode " << Mode << ": " << TC.Error << "\n"
                       << Result.Script.toString(Sig);
    auto PR = Before.patchChecked(Result.Script);
    ASSERT_TRUE(PR.Ok) << "mode " << Mode << ": " << PR.Error;
    EXPECT_TRUE(Before.equalsTree(Target));
    EXPECT_TRUE(treeEqualsModuloUris(Result.Patched, Target));
  }
}

/// Asserts that \p Stored carries exactly the derived data a from-scratch
/// recomputation yields (structure/literal hash, height, size), node for
/// node, and that no dirty marks are left behind.
void expectDerivedFresh(const SignatureTable &Sig, Tree *Stored) {
  TreeContext Scratch(Sig);
  const Tree *Fresh = Scratch.deepCopy(Stored);
  std::function<void(Tree *, const Tree *)> Walk = [&](Tree *A,
                                                       const Tree *B) {
    EXPECT_FALSE(A->derivedDirty()) << "dirty mark left at uri " << A->uri();
    EXPECT_EQ(A->structureHash(), B->structureHash())
        << "stale structure hash at uri " << A->uri();
    EXPECT_EQ(A->literalHash(), B->literalHash())
        << "stale literal hash at uri " << A->uri();
    EXPECT_EQ(A->height(), B->height()) << "stale height at uri " << A->uri();
    EXPECT_EQ(A->size(), B->size()) << "stale size at uri " << A->uri();
    ASSERT_EQ(A->arity(), B->arity());
    for (size_t I = 0, E = A->arity(); I != E; ++I)
      Walk(A->kid(I), B->kid(I));
  };
  Walk(Stored, Fresh);
}

TEST_P(TrueDiffPropertyTest, IncrementalRehashMatchesFullRefresh) {
  // Run the same diff twice -- once with the dirty-path rehash, once with
  // the paper-faithful full refresh. The scripts must be byte-identical
  // (the cache is an optimisation, never a semantic change) and the
  // incremental patched tree's digests must equal a from-scratch
  // recomputation, while rehashing no more nodes than the full refresh.
  SignatureTable Sig = makeExpSignature();
  std::array<std::string, 2> Scripts;
  for (int Mode = 0; Mode != 2; ++Mode) {
    TreeContext Ctx(Sig);
    Rng R(GetParam() * 2654435761u + 17);
    Tree *Source = randomExp(Ctx, R, 7);
    Tree *Target = R.chance(70) ? mutateExp(Ctx, R, Source, 10)
                                : randomExp(Ctx, R, 6);
    uint64_t PatchedCap = Target->size();

    TrueDiffOptions Opts;
    Opts.IncrementalRehash = Mode == 0;
    TrueDiff Diff(Ctx, Opts);
    DiffResult Result = Diff.compareTo(Source, Target);
    Scripts[Mode] = Result.Script.toString(Sig);

    EXPECT_LE(Result.NodesRehashed, PatchedCap);
    if (Opts.IncrementalRehash)
      expectDerivedFresh(Sig, Result.Patched);
    else
      EXPECT_EQ(Result.NodesRehashed, Result.Patched->size());
  }
  EXPECT_EQ(Scripts[0], Scripts[1]);
}

TEST_P(TrueDiffPropertyTest, IncrementalRehashStaysFreshAcrossRounds) {
  // The incremental contract across diffing rounds (Section 6): each
  // round's patched tree is the next round's pre-hashed source, so stale
  // digests would compound. After every round the stored tree must agree
  // with a from-scratch rebuild.
  SignatureTable Sig = makeExpSignature();
  TreeContext Ctx(Sig);
  Rng R(GetParam() * 7691 + 3);
  Tree *Current = randomExp(Ctx, R, 6);
  for (int Round = 0; Round != 8; ++Round) {
    Tree *Target = mutateExp(Ctx, R, Current, 12);
    TrueDiff Diff(Ctx);
    DiffResult Result = Diff.compareTo(Current, Target);
    ASSERT_TRUE(treeEqualsModuloUris(Result.Patched, Target));
    expectDerivedFresh(Sig, Result.Patched);
    Current = Result.Patched;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrueDiffPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

} // namespace

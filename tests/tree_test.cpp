//===- tests/tree_test.cpp - Unit tests for the tree substrate -------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tree/SExpr.h"
#include "tree/Signature.h"
#include "tree/Tree.h"

#include "TestLang.h"

#include <gtest/gtest.h>

using namespace truediff;
using namespace truediff::testlang;

namespace {

class TreeTest : public ::testing::Test {
protected:
  TreeTest() : Sig(makeExpSignature()), Ctx(Sig) {}
  SignatureTable Sig;
  TreeContext Ctx;
};

//===----------------------------------------------------------------------===//
// Signatures and subtyping
//===----------------------------------------------------------------------===//

TEST_F(TreeTest, RootTagSignature) {
  const TagSignature &RootSig = Sig.signature(Sig.rootTag());
  ASSERT_EQ(RootSig.Kids.size(), 1u);
  EXPECT_EQ(RootSig.Kids[0].Link, Sig.rootLink());
  EXPECT_EQ(RootSig.Kids[0].Sort, Sig.anySort());
  EXPECT_EQ(RootSig.Result, Sig.rootSort());
}

TEST_F(TreeTest, SubsortReflexiveAndTop) {
  SortId Exp = Sig.sort("Exp");
  EXPECT_TRUE(Sig.isSubsort(Exp, Exp));
  EXPECT_TRUE(Sig.isSubsort(Exp, Sig.anySort()));
  EXPECT_FALSE(Sig.isSubsort(Sig.anySort(), Exp));
}

TEST_F(TreeTest, DeclaredSubsortsAreTransitive) {
  SignatureTable S;
  S.declareSubsort("Lit", "Exp");
  S.declareSubsort("Exp", "Node");
  EXPECT_TRUE(S.isSubsort(S.sort("Lit"), S.sort("Exp")));
  EXPECT_TRUE(S.isSubsort(S.sort("Lit"), S.sort("Node")));
  EXPECT_FALSE(S.isSubsort(S.sort("Node"), S.sort("Lit")));
}

TEST_F(TreeTest, KidAndLitIndex) {
  const TagSignature &AddSig = Sig.signature(Sig.lookup("Add"));
  EXPECT_EQ(AddSig.kidIndex(Sig.lookup("e1")), 0);
  EXPECT_EQ(AddSig.kidIndex(Sig.lookup("e2")), 1);
  EXPECT_EQ(AddSig.kidIndex(Sig.lookup("n")), -1);
  const TagSignature &NumSig = Sig.signature(Sig.lookup("Num"));
  EXPECT_EQ(NumSig.litIndex(Sig.lookup("n")), 0);
}

TEST_F(TreeTest, TagsOfSort) {
  std::vector<TagId> Exps = Sig.tagsOfSort(Sig.sort("Exp"));
  EXPECT_EQ(Exps.size(), 10u); // Num Var Add Sub Mul Call a b c d
}

//===----------------------------------------------------------------------===//
// Construction and derived data
//===----------------------------------------------------------------------===//

TEST_F(TreeTest, FreshUrisAndSizes) {
  Tree *T = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  EXPECT_EQ(T->size(), 3u);
  EXPECT_EQ(T->height(), 2u);
  EXPECT_NE(T->uri(), T->kid(0)->uri());
  EXPECT_NE(T->kid(0)->uri(), T->kid(1)->uri());
  EXPECT_EQ(T->kid(0)->height(), 1u);
}

TEST_F(TreeTest, StructuralEquivalenceIgnoresLiterals) {
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *B = add(Ctx, num(Ctx, 3), num(Ctx, 4));
  Tree *C = sub(Ctx, num(Ctx, 1), num(Ctx, 2));
  // Paper Section 4.1: Add(Num(1),Num(2)) ~ Add(Num(3),Num(4)) but not
  // Sub(Num(1),Num(2)).
  EXPECT_EQ(A->structureHash(), B->structureHash());
  EXPECT_NE(A->structureHash(), C->structureHash());
}

TEST_F(TreeTest, LiteralEquivalenceIgnoresTags) {
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *C = sub(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *D = add(Ctx, num(Ctx, 1), num(Ctx, 3));
  // Add(Num(1),Num(2)) and Sub(Num(1),Num(2)) have equivalent literals.
  EXPECT_EQ(A->literalHash(), C->literalHash());
  EXPECT_NE(A->literalHash(), D->literalHash());
}

TEST_F(TreeTest, EqualsModuloUris) {
  Tree *A = call(Ctx, "f", num(Ctx, 1));
  Tree *B = call(Ctx, "f", num(Ctx, 1));
  Tree *C = call(Ctx, "g", num(Ctx, 1));
  EXPECT_TRUE(A->equalsModuloUris(*B));
  EXPECT_FALSE(A->equalsModuloUris(*C));
  EXPECT_TRUE(treeEqualsModuloUris(A, B));
  EXPECT_FALSE(treeEqualsModuloUris(A, C));
}

TEST_F(TreeTest, DeepCopyPreservesContentFreshUris) {
  Tree *A = mul(Ctx, var(Ctx, "x"), add(Ctx, num(Ctx, 1), var(Ctx, "y")));
  Tree *B = Ctx.deepCopy(A);
  EXPECT_TRUE(treeEqualsModuloUris(A, B));
  EXPECT_TRUE(A->equalsModuloUris(*B));
  EXPECT_NE(A->uri(), B->uri());
}

TEST_F(TreeTest, ValidateAcceptsWellFormed) {
  Tree *A = add(Ctx, num(Ctx, 1), call(Ctx, "f", var(Ctx, "x")));
  EXPECT_FALSE(Ctx.validate(A).has_value());
}

TEST_F(TreeTest, RefreshDerivedAfterMutation) {
  Tree *A = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  Tree *B = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  ASSERT_EQ(A->structureHash(), B->structureHash());
  // Mutate A's kid and refresh: hashes must diverge (different shape).
  A->setKid(1, sub(Ctx, num(Ctx, 3), num(Ctx, 4)));
  A->refreshDerived(Sig, Ctx.digestPolicy());
  EXPECT_NE(A->structureHash(), B->structureHash());
  EXPECT_EQ(A->size(), 5u);
  EXPECT_EQ(A->height(), 3u);
}

TEST_F(TreeTest, ForeachTreeAndSubtree) {
  Tree *A = add(Ctx, num(Ctx, 1), mul(Ctx, num(Ctx, 2), num(Ctx, 3)));
  size_t All = 0, Proper = 0;
  A->foreachTree([&](Tree *) { ++All; });
  A->foreachSubtree([&](Tree *) { ++Proper; });
  EXPECT_EQ(All, 5u);
  EXPECT_EQ(Proper, 4u);
}

//===----------------------------------------------------------------------===//
// S-expressions
//===----------------------------------------------------------------------===//

TEST_F(TreeTest, ParsePrintRoundTrip) {
  const char *Text = "(Add (Num 1) (Call (Var \"x\") \"f\"))";
  ParseResult R = parseSExpr(Ctx, Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(printSExpr(Sig, R.Root), Text);
}

TEST_F(TreeTest, ParseReportsUnknownTag) {
  ParseResult R = parseSExpr(Ctx, "(Bogus)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown tag"), std::string::npos);
}

TEST_F(TreeTest, ParseReportsArityErrors) {
  ParseResult R = parseSExpr(Ctx, "(Add (Num 1))");
  EXPECT_FALSE(R.ok());
}

TEST_F(TreeTest, ParseReportsTrailingInput) {
  ParseResult R = parseSExpr(Ctx, "(Num 1) (Num 2)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("trailing"), std::string::npos);
}

TEST_F(TreeTest, ParseHandlesCommentsAndEscapes) {
  ParseResult R = parseSExpr(Ctx, "; a comment\n(Var \"a\\\"b\")");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Root->lit(0).asString(), "a\"b");
}

TEST_F(TreeTest, PrintWithUris) {
  Tree *T = add(Ctx, num(Ctx, 1), num(Ctx, 2));
  std::string S = printSExprWithUris(Sig, T);
  EXPECT_NE(S.find("Add_"), std::string::npos);
  EXPECT_NE(S.find("Num_"), std::string::npos);
}

TEST_F(TreeTest, ParsedTreeEqualsBuiltTree) {
  ParseResult R = parseSExpr(Ctx, "(Mul (Num 6) (Num 7))");
  ASSERT_TRUE(R.ok());
  Tree *Built = mul(Ctx, num(Ctx, 6), num(Ctx, 7));
  EXPECT_TRUE(treeEqualsModuloUris(R.Root, Built));
  EXPECT_TRUE(R.Root->equalsModuloUris(*Built));
}

} // namespace

//===- bench/json_documents.cpp - JSON substrate benchmark (E12) -----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment (DESIGN.md E12): the paper's evaluation uses
/// Python; this bench repeats the conciseness and throughput comparison
/// on JSON documents -- the database use case of Section 1 -- to show the
/// results are not Python-specific. Same protocol as fig4/fig5: patch
/// sizes per tool and fastest-of-3 throughput with hashing included.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "corpus/JsonGen.h"
#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "json/Json.h"
#include "lcsdiff/LcsDiff.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::bench;

int main(int Argc, char **Argv) {
  std::printf("json_documents: conciseness and throughput on JSON "
              "(extension E12)\n");
  unsigned NumPairs = 200;
  if (Argc > 1)
    NumPairs = parseCountArg(Argv[1], "pair count");
  std::printf("# %u document pairs (seed 7)\n", NumPairs);

  SignatureTable Sig = json::makeJsonSignature();
  Rng R(7);

  std::vector<double> TruediffSizes, GumtreeSizes, HdiffSizes, LcsSizes;
  std::vector<double> TruediffThroughput, GumtreeThroughput;

  for (unsigned Pair = 0; Pair != NumPairs; ++Pair) {
    TreeContext Ctx(Sig);
    corpus::JsonGenOptions Gen;
    Gen.MaxDepth = 5;
    Tree *Before = corpus::generateJson(Ctx, R, Gen);
    Tree *After = corpus::mutateJson(Ctx, R, Before);
    double Nodes = static_cast<double>(Before->size() + After->size());

    gumtree::RoseForest Forest;
    double GumtreeSize = static_cast<double>(
        gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Before),
                             Forest.fromTree(Sig, After))
            .patchSize());
    hdiff::HDiff HDiffer(Ctx);
    double HdiffSize =
        static_cast<double>(HDiffer.diff(Before, After).numConstructors());
    double LcsSize =
        static_cast<double>(lcsdiff::lcsDiff(Before, After).size());

    size_t TruediffSize = 0;
    double TD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Before);
      Tree *Dst = Ctx.deepCopy(After);
      TrueDiff Differ(Ctx);
      TruediffSize = Differ.compareTo(Src, Dst).Script.coalescedSize();
    });
    double GT = fastestMs(3, [&] {
      gumtree::RoseForest LocalForest;
      (void)gumtree::gumtreeDiff(LocalForest,
                                 LocalForest.fromTree(Sig, Before),
                                 LocalForest.fromTree(Sig, After));
    });

    TruediffSizes.push_back(static_cast<double>(TruediffSize));
    GumtreeSizes.push_back(GumtreeSize);
    HdiffSizes.push_back(HdiffSize);
    LcsSizes.push_back(LcsSize);
    TruediffThroughput.push_back(Nodes / TD);
    GumtreeThroughput.push_back(Nodes / GT);
  }

  printHeader("patch sizes on JSON documents");
  printRow("truediff", TruediffSizes);
  printRow("gumtree", GumtreeSizes);
  printRow("hdiff", HdiffSizes);
  printRow("lcsdiff (all ops)", LcsSizes);

  printHeader("throughput (nodes/ms, fastest of 3)");
  printRow("truediff", TruediffThroughput);
  printRow("gumtree", GumtreeThroughput);

  JsonReport Report("json_documents");
  Report.meta("pairs", static_cast<double>(TruediffSizes.size()));
  Report.add("truediff_size", "edits", TruediffSizes);
  Report.add("gumtree_size", "edits", GumtreeSizes);
  Report.add("hdiff_size", "edits", HdiffSizes);
  Report.add("lcsdiff_size", "edits", LcsSizes);
  Report.add("truediff", "nodes_per_ms", TruediffThroughput);
  Report.add("gumtree", "nodes_per_ms", GumtreeThroughput);
  Report.write();
  return 0;
}

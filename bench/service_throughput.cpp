//===- bench/service_throughput.cpp - Concurrent diff-service scaling ------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the DiffService with N concurrent client threads over the
/// commit corpus and reports aggregate diffing throughput (nodes/ms) as
/// the worker pool grows from 1 to hardware_concurrency. Each corpus
/// commit chain becomes one live document; clients replay the chain's
/// commits as Submit requests (parse + diff + script serialization all
/// happen inside the service workers), so the bench measures the full
/// serving path including queueing. Independent documents are the unit
/// of parallelism -- exactly the store's locking model -- so throughput
/// should rise monotonically with the worker count until it saturates
/// the hardware.
///
/// A second phase measures the warm-path digest cache: the same chains
/// are replayed twice at the store level, once with persisted Step-1
/// digests (warm, the default) and once rehashing every stored tree from
/// scratch per request (cold, a stateless service). The emitted scripts
/// must be byte-identical -- the cache is an optimisation, never a
/// semantic change -- and the warm path must be at least 2x the cold
/// path in nodes/ms.
///
/// An overload phase measures the protection added by fair scheduling
/// and sojourn shedding: a hot tenant offers 4x the measured
/// single-tenant capacity open-loop while a cold tenant trickles, and
/// the run fails unless goodput stays within 20% of capacity, the cold
/// tenant is fully served with bounded p99 latency, and every shed or
/// backpressure response carries a per-document retry_after_ms hint.
///
/// A failover phase kills the leader mid-load over real sockets,
/// promotes its follower, and reports time-to-first-successful-write
/// and the read-goodput dip while a resilient client rides through the
/// takeover; the gate is convergence (durable prefix preserved,
/// byte-identical replication from the new leader), not wall-clock.
///
/// A final integrity phase measures the background scrubber's serving
/// cost: the same closed-loop workload with the scrubber off and on,
/// gated at a 5% goodput penalty and zero findings on the clean run,
/// plus time-to-detect and time-to-repair for an injected in-memory
/// corruption (restored to byte identity from snapshot+WAL).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "client/Client.h"
#include "integrity/Scrubber.h"
#include "json/Json.h"
#include "net/NetServer.h"
#include "net/Role.h"
#include "net/ServiceHandler.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"
#include "python/Python.h"
#include "replica/Failover.h"
#include "replica/Follower.h"
#include "replica/Leader.h"
#include "replica/ReplicationLog.h"
#include "service/DiffService.h"
#include "truechange/Serialize.h"

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <future>
#include <mutex>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace truediff;
using namespace truediff::bench;
using namespace truediff::service;

namespace {

/// One document's commit chain: the opening source plus each successor.
struct Chain {
  std::string Base;
  std::vector<std::string> Commits;
};

TreeBuilder pythonBuilder(const std::string *Source) {
  return [Source](TreeContext &Ctx) -> BuildResult {
    python::PyParseResult P = python::parsePython(Ctx, *Source);
    if (!P.ok())
      return BuildResult{nullptr, "python parse error"};
    return BuildResult{P.Module, ""};
  };
}

/// A scratch data directory for the integrity phase, removed with its
/// wal/snap contents on destruction (same idiom as bench/persistence).
class ScratchDir {
public:
  ScratchDir() {
    char Tmpl[] = "./integrity-bench-XXXXXX";
    const char *P = ::mkdtemp(Tmpl);
    Dir = P ? P : "";
  }
  ~ScratchDir() {
    if (Dir.empty())
      return;
    for (const auto &[Index, Path] : persist::listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const persist::SnapshotFileName &F : persist::listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  bool ok() const { return !Dir.empty(); }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

/// Runs the whole workload against a fresh store+service with \p Workers
/// workers; returns {nodesDiffed, wallMs}.
std::pair<double, double> runWorkload(const SignatureTable &Sig,
                                      const std::vector<Chain> &Chains,
                                      unsigned Workers, unsigned Clients) {
  DocumentStore Store(Sig);
  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.QueueCapacity = 1024;
  DiffService Service(Store, Cfg);

  auto Start = Clock::now();
  std::vector<std::thread> Pool;
  Pool.reserve(Clients);
  for (unsigned C = 0; C != Clients; ++C) {
    Pool.emplace_back([&, C] {
      // Client C owns chains C, C+Clients, ... and replays each one
      // sequentially; awaiting every future keeps per-document requests
      // ordered while Clients requests stay in flight service-wide.
      for (size_t I = C; I < Chains.size(); I += Clients) {
        const Chain &Ch = Chains[I];
        DocId Doc = static_cast<DocId>(I + 1);
        Response R = Service.open(Doc, pythonBuilder(&Ch.Base));
        if (!R.Ok)
          continue;
        for (const std::string &Commit : Ch.Commits)
          Service.submit(Doc, pythonBuilder(&Commit));
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  double WallMs = msSince(Start);
  double Nodes = static_cast<double>(Service.metrics().NodesDiffed.load());
  Service.shutdown();
  return {Nodes, WallMs};
}

/// One cold-or-warm replay of the whole corpus through a fresh store.
struct ReplayResult {
  double Nodes = 0;
  /// Wall time of the open/submit path minus ParseMs: the diff-service
  /// processing the digest cache actually accelerates.
  double DiffMs = 0;
  /// Time spent inside the tree builders (parsing request payloads).
  /// Identical work on both sides and excluded from the throughput
  /// comparison, matching the paper's evaluation methodology of timing
  /// diffing separately from parsing.
  double ParseMs = 0;
  uint64_t Rehashed = 0;
  /// Total edits across all emitted scripts -- the conciseness axis.
  uint64_t Edits = 0;
  std::vector<std::string> Scripts;
};

/// Replays every chain sequentially into a fresh DocumentStore with the
/// digest cache on (\p Persist) or off, hashing under \p Digest. Script
/// serialization for the byte-identity check happens outside the timed
/// region. With \p Fallback every submit takes the deadline-fallback
/// path (the type-checked replace-root script) instead of diffing.
ReplayResult replayStore(const SignatureTable &Sig,
                         const std::vector<Chain> &Chains, bool Persist,
                         bool Fallback = false,
                         DigestPolicy Digest = DigestPolicy::Sha256) {
  DocumentStore::Config Cfg;
  Cfg.PersistDigests = Persist;
  Cfg.Digest = Digest;
  DocumentStore Store(Sig, Cfg);
  SubmitOptions Opts;
  if (Fallback)
    Opts.UseFallback = [] { return true; };
  ReplayResult Out;
  auto TimedBuilder = [&Out](const std::string *Src) {
    return [&Out, Src](TreeContext &Ctx) -> BuildResult {
      auto T0 = Clock::now();
      BuildResult B = pythonBuilder(Src)(Ctx);
      Out.ParseMs += msSince(T0);
      return B;
    };
  };
  std::vector<EditScript> Scripts;
  uint64_t Nodes = 0;
  auto Start = Clock::now();
  for (size_t I = 0; I != Chains.size(); ++I) {
    DocId Doc = static_cast<DocId>(I + 1);
    if (!Store.open(Doc, TimedBuilder(&Chains[I].Base)).Ok)
      continue;
    for (const std::string &Commit : Chains[I].Commits) {
      StoreResult R = Store.submit(Doc, TimedBuilder(&Commit), Opts);
      if (!R.Ok)
        continue;
      Nodes += R.NodesDiffed;
      Out.Edits += R.Script.size();
      Scripts.push_back(std::move(R.Script));
    }
  }
  Out.DiffMs = msSince(Start) - Out.ParseMs;
  Out.Nodes = static_cast<double>(Nodes);
  Out.Rehashed = Store.stats().NodesRehashed;
  Out.Scripts.reserve(Scripts.size());
  for (const EditScript &S : Scripts)
    Out.Scripts.push_back(serializeEditScript(Sig, S));
  return Out;
}

/// Closed-loop textual "get" requests over one real TCP connection;
/// returns completed reads until \p StopFlag is set. Each response is a
/// framed block terminated by a "." line.
uint64_t readLoop(uint16_t Port, const std::atomic<bool> &StopFlag) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return 0;
  sockaddr_in A{};
  A.sin_family = AF_INET;
  A.sin_port = htons(Port);
  A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
    ::close(Fd);
    return 0;
  }
  const std::string Cmd = "get 1\n";
  std::string Buf;
  char Tmp[4096];
  uint64_t Done = 0;
  while (!StopFlag.load(std::memory_order_relaxed)) {
    if (::send(Fd, Cmd.data(), Cmd.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(Cmd.size()))
      break;
    for (;;) {
      // A response block ends with a lone "." line; the status line
      // always precedes it, so "\n.\n" is the frame boundary.
      size_t End = Buf.find("\n.\n");
      if (End != std::string::npos) {
        Buf.erase(0, End + 3);
        break;
      }
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0) {
        ::close(Fd);
        return Done;
      }
      Buf.append(Tmp, static_cast<size_t>(N));
    }
    ++Done;
  }
  ::close(Fd);
  return Done;
}

/// One follower replica: its loop, the replica, and a TCP read endpoint.
struct BenchFollower {
  net::EventLoop Loop;
  std::unique_ptr<replica::Follower> F;
  std::unique_ptr<replica::ReplicaReadHandler> H;
  std::unique_ptr<net::NetServer> Read;

  explicit BenchFollower(const SignatureTable &Sig) {
    Loop.start();
    F = std::make_unique<replica::Follower>(Loop, Sig);
    H = std::make_unique<replica::ReplicaReadHandler>(*F);
    Read = std::make_unique<net::NetServer>(Loop, Sig, *H,
                                            net::NetServer::Config());
    Read->start();
  }
  ~BenchFollower() {
    F->disconnect();
    Loop.stop();
  }
};

/// A follower that can be promoted to leader mid-run: one loop, one
/// role-routed client port (follower reads before promotion, the full
/// leader protocol after), and the leader stack built by promote().
struct PromotableReplica {
  const SignatureTable &Sig;
  net::EventLoop Loop;
  net::RoleState Role;

  std::unique_ptr<replica::Follower> F;
  std::unique_ptr<replica::ReplicaReadHandler> Reader;
  std::unique_ptr<replica::FailoverHandler> Router;
  std::unique_ptr<net::NetServer> ClientSrv;
  bool Started = false;

  std::unique_ptr<DocumentStore> Store;
  std::unique_ptr<replica::ReplicationLog> Log;
  std::unique_ptr<replica::Leader> Lead;
  std::unique_ptr<DiffService> Svc;
  std::unique_ptr<net::ServiceHandler> Writer;

  explicit PromotableReplica(const SignatureTable &Sig) : Sig(Sig) {
    F = std::make_unique<replica::Follower>(Loop, Sig);
    replica::ReplicaReadHandler::Config RC;
    RC.Role = &Role;
    Reader = std::make_unique<replica::ReplicaReadHandler>(*F, RC);
    Router = std::make_unique<replica::FailoverHandler>(Role, *Reader);
    ClientSrv = std::make_unique<net::NetServer>(Loop, Sig, *Router);
    Started = ClientSrv->start();
    Loop.start();
  }

  ~PromotableReplica() {
    F->disconnect();
    Loop.stop();
    if (Svc)
      Svc->shutdown();
  }

  bool promote(uint64_t NewEpoch) {
    auto NewStore = std::make_unique<DocumentStore>(Sig);
    auto NewLog = std::make_unique<replica::ReplicationLog>(*NewStore);
    replica::PromotionResult PR = replica::promoteFollower(
        *F, *NewStore, /*Prov=*/nullptr, *NewLog, NewEpoch);
    if (!PR.Ok) {
      std::printf("# promotion failed: %s\n", PR.Error.c_str());
      return false;
    }
    Store = std::move(NewStore);
    Log = std::move(NewLog);
    replica::Leader::Config LC;
    LC.Epoch = NewEpoch;
    LC.OnFenced = [this](uint64_t) { Role.demote(std::string()); };
    Lead = std::make_unique<replica::Leader>(Loop, *Log, LC);
    if (!Lead->start())
      return false;
    ServiceConfig SC;
    SC.Workers = 2;
    Svc = std::make_unique<DiffService>(*Store, SC);
    net::ServiceHandler::Config WC;
    WC.Role = &Role;
    Writer = std::make_unique<net::ServiceHandler>(*Svc, WC);
    Router->setWriter(Writer.get());
    Role.promote(NewEpoch);
    return true;
  }
};

/// A JSON array s-expression of \p Len numbers whose head is \p Tweak:
/// successive versions differ in one leaf, the steady-write shape.
std::string jsonArrayExpr(unsigned Tweak, unsigned Len = 12) {
  std::string S = "(JArray ";
  for (unsigned I = 0; I != Len; ++I)
    S += "(ElemCons (JNumber " + std::to_string(I == 0 ? Tweak : I) + ".0) ";
  S += "(ElemNil)";
  S.append(Len, ')');
  S += ")";
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::printf("service_throughput: concurrent diff service scaling, "
              "1..hardware_concurrency workers\n");
  SignatureTable Sig = python::makePythonSignature();
  std::vector<corpus::CommitPair> Pairs = defaultCorpus(Argc, Argv, 160);

  // Rebuild the commit chains: within a chain, pair i's After is pair
  // i+1's Before (corpus contract), so a new chain starts whenever that
  // linkage breaks.
  std::vector<Chain> Chains;
  for (const corpus::CommitPair &Pair : Pairs) {
    if (Chains.empty() || Chains.back().Commits.empty() ||
        Chains.back().Commits.back() != Pair.Before) {
      Chains.push_back(Chain{Pair.Before, {}});
    }
    Chains.back().Commits.push_back(Pair.After);
  }

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  // Scan at least 1..4 workers even on small machines (argv[2] overrides
  // the top of the range); oversubscription is harmless, it just stops
  // gaining.
  unsigned MaxWorkers = std::max(4u, Hw);
  if (Argc > 2)
    MaxWorkers = parseCountArg(Argv[2], "worker count");
  unsigned Clients = std::min<unsigned>(
      std::max(8u, MaxWorkers), static_cast<unsigned>(Chains.size()));
  std::printf("# %zu documents, %zu commits, %u client threads\n",
              Chains.size(), Pairs.size(), Clients);
  std::printf("%-10s %14s %12s %10s\n", "workers", "nodes/ms", "wall ms",
              "speedup");

  JsonReport Report("service_throughput");
  Report.meta("documents", static_cast<double>(Chains.size()));
  Report.meta("commits", static_cast<double>(Pairs.size()));
  Report.meta("clients", static_cast<double>(Clients));
  Report.meta("hardware_concurrency", static_cast<double>(Hw));
  if (Hw == 1) {
    std::printf("# WARNING: hardware_concurrency == 1; worker scaling and "
                "Step-1 parallelism cannot show real speedups here\n");
    Report.meta("single_core_warning",
                "hardware_concurrency == 1: parallel speedups not "
                "measurable on this machine");
  }

  std::vector<unsigned> WorkerCounts;
  for (unsigned W = 1; W < MaxWorkers; W *= 2)
    WorkerCounts.push_back(W);
  WorkerCounts.push_back(MaxWorkers);

  // Monotone-within-noise: each step must reach at least 90% of the best
  // seen so far. On a single hardware thread the curve is flat (extra
  // workers cannot add cycles); on real multicore it must rise.
  double Base = 0, Best = 0;
  bool Monotone = true;
  for (unsigned W : WorkerCounts) {
    auto [Nodes, WallMs] = runWorkload(Sig, Chains, W, Clients);
    double Throughput = Nodes / WallMs;
    if (Base == 0)
      Base = Throughput;
    if (Throughput < 0.90 * Best)
      Monotone = false;
    Best = std::max(Best, Throughput);
    std::printf("%-10u %14.1f %12.1f %9.2fx\n", W, Throughput, WallMs,
                Throughput / Base);
    Report.scalar("workers_" + std::to_string(W), "nodes_per_ms", Throughput);
  }
  Report.meta("monotone", Monotone ? "yes" : "no");

  // Phase 2: cold vs warm digest cache. Parse time (identical on both
  // sides) is measured separately and excluded, matching the paper's
  // methodology of timing diffing apart from parsing. Two reps each,
  // best diff time kept, cold first so allocator warm-up cannot flatter
  // the warm path.
  std::printf("\n%-10s %14s %12s %12s %16s\n", "cache", "nodes/ms",
              "diff ms", "parse ms", "nodes rehashed");
  auto BestOf = [&](bool Persist, DigestPolicy Digest = DigestPolicy::Sha256) {
    ReplayResult Best =
        replayStore(Sig, Chains, Persist, /*Fallback=*/false, Digest);
    ReplayResult Again =
        replayStore(Sig, Chains, Persist, /*Fallback=*/false, Digest);
    if (Again.DiffMs < Best.DiffMs)
      Best = std::move(Again);
    return Best;
  };
  ReplayResult Cold = BestOf(/*Persist=*/false);
  ReplayResult Warm = BestOf(/*Persist=*/true);
  double ColdTp = Cold.Nodes / Cold.DiffMs;
  double WarmTp = Warm.Nodes / Warm.DiffMs;
  double Ratio = WarmTp / ColdTp;
  bool Identical = Warm.Scripts == Cold.Scripts;
  std::printf("%-10s %14.1f %12.1f %12.1f %16llu\n", "cold", ColdTp,
              Cold.DiffMs, Cold.ParseMs,
              static_cast<unsigned long long>(Cold.Rehashed));
  std::printf("%-10s %14.1f %12.1f %12.1f %16llu\n", "warm", WarmTp,
              Warm.DiffMs, Warm.ParseMs,
              static_cast<unsigned long long>(Warm.Rehashed));
  std::printf("# warm/cold %.2fx, scripts byte-identical: %s\n", Ratio,
              Identical ? "yes" : "NO");

  Report.scalar("digest_cache_cold", "nodes_per_ms", ColdTp);
  Report.scalar("digest_cache_warm", "nodes_per_ms", WarmTp);
  Report.scalar("digest_cache_speedup", "ratio", Ratio);
  Report.meta("cold_nodes_rehashed", static_cast<double>(Cold.Rehashed));
  Report.meta("warm_nodes_rehashed", static_cast<double>(Warm.Rehashed));
  Report.meta("scripts_identical", Identical ? "yes" : "no");

  // Phase 2b: digest policy. The cold path (no digest cache, every
  // stored tree rehashed per request) is where hashing dominates, so
  // it is where the Fast128 policy must pay off: replay it under both
  // policies and gate that fast cold throughput reaches 2x the SHA-256
  // cold throughput with byte-identical scripts. Identical replay order
  // against fresh stores means identical URI streams, so the serialized
  // scripts are directly comparable across policies.
  ReplayResult FastCold = BestOf(/*Persist=*/false, DigestPolicy::Fast128);
  double FastColdTp = FastCold.Nodes / FastCold.DiffMs;
  double PolicyRatio = FastColdTp / ColdTp;
  bool PolicyIdentical = FastCold.Scripts == Cold.Scripts;
  std::printf("%-10s %14.1f %12.1f %12.1f %16llu\n", "cold-fast", FastColdTp,
              FastCold.DiffMs, FastCold.ParseMs,
              static_cast<unsigned long long>(FastCold.Rehashed));
  std::printf("# fast128/sha256 cold %.2fx (gate: >= 2.0), scripts "
              "byte-identical: %s\n",
              PolicyRatio, PolicyIdentical ? "yes" : "NO");
  Report.scalar("digest_policy_fast_cold", "nodes_per_ms", FastColdTp);
  Report.scalar("digest_policy_speedup", "ratio", PolicyRatio);
  Report.meta("policy_scripts_identical", PolicyIdentical ? "yes" : "no");

  // Phase 3: the deadline-fallback path (replace-root script) vs the
  // full diff. The fallback skips Steps 1-3 entirely; its cost is plain
  // tree (un)loading -- strictly input-size-linear, independent of edit
  // distance -- which bounds the worst case even though the warm diff
  // usually beats it on average. Its scripts rewrite the whole document.
  // Both axes are reported so the deadline knob's cost is visible: what
  // the degraded answer costs to produce, and how much larger it is on
  // the wire.
  ReplayResult Fb = replayStore(Sig, Chains, /*Persist=*/true,
                                /*Fallback=*/true);
  double FbTp = Fb.Nodes / Fb.DiffMs;
  size_t Commits = Warm.Scripts.size();
  double DiffEdits =
      Commits == 0 ? 0 : static_cast<double>(Warm.Edits) / Commits;
  double FbEdits =
      Fb.Scripts.empty() ? 0
                         : static_cast<double>(Fb.Edits) / Fb.Scripts.size();
  bool FallbackOk = Fb.Scripts.size() == Commits && Fb.Edits >= Warm.Edits;
  std::printf("\n%-10s %14s %12s %16s\n", "path", "nodes/ms", "diff ms",
              "mean edits");
  std::printf("%-10s %14.1f %12.1f %16.1f\n", "diff", WarmTp, Warm.DiffMs,
              DiffEdits);
  std::printf("%-10s %14.1f %12.1f %16.1f\n", "fallback", FbTp, Fb.DiffMs,
              FbEdits);
  std::printf("# fallback throughput %.2fx of diff, scripts %.1fx larger\n",
              FbTp / WarmTp, DiffEdits == 0 ? 0 : FbEdits / DiffEdits);

  Report.scalar("fallback", "nodes_per_ms", FbTp);
  Report.scalar("fallback_mean_edits", "edits", FbEdits);
  Report.scalar("diff_mean_edits", "edits", DiffEdits);
  Report.meta("fallback_all_ok", FallbackOk ? "yes" : "no");

  // Phase 4: overload. A hot tenant floods the service open-loop at 4x
  // the measured single-tenant capacity while a cold tenant trickles one
  // request every 20ms. Fair scheduling plus sojourn shedding must hold
  // goodput within 20% of capacity (the workers keep doing useful work,
  // the excess is rejected cheaply at the queue), keep every cold
  // request served with bounded latency, and stamp every shed or
  // backpressure response with a per-document retry_after_ms hint.
  auto MakePy = [](int Tweak) {
    std::string S;
    for (int I = 0; I < 60; ++I)
      S += "v" + std::to_string(I) + " = " +
           std::to_string(I == 0 ? Tweak : I) + "\n";
    return S;
  };
  const std::string HotA = MakePy(1000), HotB = MakePy(2000);
  const std::string ColdA = MakePy(3000), ColdB = MakePy(4000);

  ServiceConfig OvCfg;
  OvCfg.Workers = 2;
  OvCfg.QueueCapacity = 256;
  // The shed target is set below PerDocQueueCapacity x the expected
  // per-request service time so sojourn shedding engages before the
  // per-document wall does -- both rejection paths run under load.
  OvCfg.PerDocQueueCapacity = 128;
  OvCfg.ShedTargetMs = 10;
  OvCfg.ShedIntervalMs = 5;

  // Single-tenant capacity: closed loop over one document, so the queue
  // stays empty and the number is pure service rate. Requests on one
  // document serialize on its lock, which is exactly what the hot tenant
  // is limited to under fairness.
  double CapacityPerMs = 0;
  {
    DocumentStore Store(Sig);
    DiffService Service(Store, OvCfg);
    if (Service.open(1, pythonBuilder(&HotA)).Ok) {
      for (int I = 0; I < 40; ++I) // warm the parser and the EWMA
        Service.submit(1, pythonBuilder(I % 2 != 0 ? &HotB : &HotA));
      const int Ops = 400;
      auto T0 = Clock::now();
      for (int I = 0; I < Ops; ++I)
        Service.submit(1, pythonBuilder(I % 2 != 0 ? &HotB : &HotA));
      CapacityPerMs = Ops / msSince(T0);
    }
    Service.shutdown();
  }

  uint64_t HotOk = 0, HotShed = 0, HotBack = 0, HotOther = 0;
  uint64_t HintMissing = 0, ColdOk = 0;
  bool ColdClean = true;
  std::vector<double> ColdLatMs;
  double GoodputPerMs = 0;
  {
    DocumentStore Store(Sig);
    DiffService Service(Store, OvCfg);
    const DocId HotDoc = 1, ColdDoc = 2;
    bool Opened = Service.open(HotDoc, pythonBuilder(&HotA)).Ok &&
                  Service.open(ColdDoc, pythonBuilder(&ColdA)).Ok;
    const double WindowMs = 300;
    const double OfferPerMs = CapacityPerMs * 4.0;
    auto T0 = Clock::now();
    std::thread ColdClient([&] {
      for (unsigned I = 0; Opened && msSince(T0) < WindowMs; ++I) {
        auto C0 = Clock::now();
        Response R = Service.submit(
            ColdDoc, pythonBuilder(I % 2 != 0 ? &ColdB : &ColdA));
        ColdLatMs.push_back(msSince(C0));
        if (R.Ok)
          ++ColdOk;
        else
          ColdClean = false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    // Open-loop offering: track the ideal cumulative count so oversleeps
    // are caught up and the offered rate really is 4x capacity.
    std::vector<std::future<Response>> Hot;
    size_t Sent = 0;
    while (Opened) {
      double Elapsed = msSince(T0);
      if (Elapsed >= WindowMs)
        break;
      size_t Want = static_cast<size_t>(Elapsed * OfferPerMs) + 1;
      for (; Sent < Want; ++Sent)
        Hot.push_back(Service.submitAsync(
            HotDoc, pythonBuilder(Sent % 2 != 0 ? &HotB : &HotA)));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ColdClient.join();
    for (std::future<Response> &F : Hot) {
      Response R = F.get();
      if (R.Ok) {
        ++HotOk;
        continue;
      }
      if (R.Code == ErrCode::Shed)
        ++HotShed;
      else if (R.Code == ErrCode::Backpressure)
        ++HotBack;
      else
        ++HotOther;
      if ((R.Code == ErrCode::Shed || R.Code == ErrCode::Backpressure) &&
          R.RetryAfterMs < 1)
        ++HintMissing;
    }
    // Goodput over the whole span including the drain of the accepted
    // tail -- the residual queue is bounded by the shed target, so this
    // under-counts by at most a few percent.
    GoodputPerMs = static_cast<double>(HotOk + ColdOk) / msSince(T0);
    Service.shutdown();
  }

  std::sort(ColdLatMs.begin(), ColdLatMs.end());
  double ColdP99 =
      ColdLatMs.empty()
          ? 0
          : ColdLatMs[std::min(ColdLatMs.size() - 1,
                               ColdLatMs.size() * 99 / 100)];
  double GoodputRatio = CapacityPerMs == 0 ? 0 : GoodputPerMs / CapacityPerMs;
  uint64_t Rejected = HotShed + HotBack;
  bool OverloadOk = GoodputRatio >= 0.80 && Rejected > 0 &&
                    HintMissing == 0 && ColdClean && ColdP99 <= 200.0;

  std::printf("\n%-10s %12s %12s %10s %10s %12s\n", "overload", "ops/ms",
              "ratio", "shed", "keyfull", "cold p99 ms");
  std::printf("%-10s %12.2f %12s %10s %10s %12s\n", "capacity", CapacityPerMs,
              "-", "-", "-", "-");
  std::printf("%-10s %12.2f %12.2f %10llu %10llu %12.1f\n", "4x-load",
              GoodputPerMs, GoodputRatio,
              static_cast<unsigned long long>(HotShed),
              static_cast<unsigned long long>(HotBack), ColdP99);
  std::printf("# cold tenant: %llu/%zu ok, hints missing: %llu, other "
              "errors: %llu\n",
              static_cast<unsigned long long>(ColdOk), ColdLatMs.size(),
              static_cast<unsigned long long>(HintMissing),
              static_cast<unsigned long long>(HotOther));

  Report.scalar("overload_capacity", "ops_per_ms", CapacityPerMs);
  Report.scalar("overload_goodput", "ops_per_ms", GoodputPerMs);
  Report.scalar("overload_goodput_ratio", "ratio", GoodputRatio);
  Report.scalar("overload_shed", "responses", static_cast<double>(HotShed));
  Report.scalar("overload_backpressure", "responses",
                static_cast<double>(HotBack));
  Report.scalar("overload_cold_p99", "ms", ColdP99);
  Report.meta("overload_ok", OverloadOk ? "yes" : "no");

  // Phase 5: replication over real sockets. For 0/1/2 follower replicas,
  // closed-loop textual reads run against every read endpoint (the
  // leader's own TCP front end, plus one per follower) and aggregate
  // read goodput is reported -- the scaling axis replicas exist for.
  // Then a submit flood drives the leader while follower lag
  // (leader seq minus applied seq) is sampled, and the drain time from
  // end-of-flood to full catch-up is measured. Throughput numbers are
  // reported, not gated (CI runners may be single-core); the gate is
  // byte-for-byte convergence after the flood.
  std::printf("\n%-10s %14s %12s\n", "replicas", "reads/ms", "readers");
  bool ReplConverged = true;
  double MaxLagRecords = 0, DrainMs = 0, CatchupMs = 0;
  for (unsigned NumReplicas = 0; NumReplicas <= 2; ++NumReplicas) {
    DocumentStore Store(Sig);
    replica::ReplicationLog Log(Store);
    net::EventLoop LeaderLoop;
    replica::Leader Lead(LeaderLoop, Log, replica::Leader::Config());
    Log.attach();
    bool Up = Lead.start();
    ServiceConfig RSC;
    RSC.Workers = 2;
    DiffService Service(Store, RSC);
    net::ServiceHandler Handler(Service);
    net::NetServer Front(LeaderLoop, Sig, Handler, net::NetServer::Config());
    Up = Up && Front.start();
    LeaderLoop.start();
    if (!Up) {
      std::printf("# replication endpoints failed to start\n");
      ReplConverged = false;
      break;
    }
    Service.open(1, pythonBuilder(&HotA));

    std::vector<std::unique_ptr<BenchFollower>> Replicas;
    std::vector<uint16_t> ReadPorts{Front.port()};
    for (unsigned R = 0; R != NumReplicas; ++R) {
      auto F = std::make_unique<BenchFollower>(Sig);
      if (!F->F->connectTo("127.0.0.1", Lead.port())) {
        ReplConverged = false;
        continue;
      }
      ReadPorts.push_back(F->Read->port());
      Replicas.push_back(std::move(F));
    }

    // Read goodput: two closed-loop readers per endpoint.
    std::atomic<bool> StopReads{false};
    std::vector<std::future<uint64_t>> Readers;
    for (uint16_t Port : ReadPorts)
      for (int R = 0; R != 2; ++R)
        Readers.push_back(std::async(std::launch::async,
                                     [Port, &StopReads] {
                                       return readLoop(Port, StopReads);
                                     }));
    auto R0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    StopReads.store(true);
    uint64_t Reads = 0;
    for (std::future<uint64_t> &F : Readers)
      Reads += F.get();
    double ReadsPerMs = static_cast<double>(Reads) / msSince(R0);
    std::printf("%-10u %14.1f %12zu\n", NumReplicas, ReadsPerMs,
                ReadPorts.size() * 2);
    Report.scalar("read_goodput_replicas_" + std::to_string(NumReplicas),
                  "reads_per_ms", ReadsPerMs);

    if (NumReplicas == 2) {
      // Replication lag under a submit flood on the leader.
      std::atomic<bool> FloodDone{false};
      std::thread Sampler([&] {
        while (!FloodDone.load()) {
          uint64_t Seq = Log.currentSeq();
          for (auto &F : Replicas) {
            double Lag = static_cast<double>(Seq) -
                         static_cast<double>(F->F->lastSeq());
            MaxLagRecords = std::max(MaxLagRecords, Lag);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
      const int FloodOps = 150;
      for (int I = 0; I != FloodOps; ++I)
        Service.submit(1, pythonBuilder(I % 2 != 0 ? &HotB : &HotA));
      auto F0 = Clock::now();
      FloodDone.store(true);
      Sampler.join();
      uint64_t Target = Log.currentSeq();
      auto CaughtUp = [&] {
        for (auto &F : Replicas)
          if (!F->F->caughtUp() || F->F->lastSeq() != Target)
            return false;
        return true;
      };
      while (!CaughtUp() && msSince(F0) < 30000)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      DrainMs = msSince(F0);

      // Catch-up time: a fresh follower joining after the flood.
      auto Late = std::make_unique<BenchFollower>(Sig);
      auto C0 = Clock::now();
      bool LateUp = Late->F->connectTo("127.0.0.1", Lead.port());
      while (LateUp &&
             !(Late->F->caughtUp() && Late->F->lastSeq() == Target) &&
             msSince(C0) < 30000)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      CatchupMs = msSince(C0);
      if (LateUp)
        Replicas.push_back(std::move(Late));
      else
        ReplConverged = false;

      // The gate: every replica byte-identical to the leader.
      DocumentSnapshot Snap = Store.snapshot(1);
      for (auto &F : Replicas) {
        replica::Follower::ReadResult RR = F->F->read(1);
        if (!Snap.Ok || !RR.Ok || RR.UriText != Snap.UriText)
          ReplConverged = false;
      }
      std::printf("# lag: max %.0f records behind, drain %.1f ms, "
                  "fresh catch-up %.1f ms, converged: %s\n",
                  MaxLagRecords, DrainMs, CatchupMs,
                  ReplConverged ? "yes" : "NO");
    }
    Service.shutdown();
    Replicas.clear(); // followers first, then the leader's loop
    LeaderLoop.stop(); // before NetServer/Leader are destroyed
  }

  Report.scalar("replication_max_lag", "records", MaxLagRecords);
  Report.scalar("replication_drain", "ms", DrainMs);
  Report.scalar("replication_catchup", "ms", CatchupMs);
  Report.meta("replication_converged", ReplConverged ? "yes" : "no");

  // Phase 6: failover. A resilient client writes through a leader while
  // closed-loop reads run against its follower's port; mid-load the
  // leader is killed outright (loop stopped, service down) and the
  // follower is promoted. Reported: time from the kill to the client's
  // first acknowledged write on the new leader, and read goodput before,
  // during, and after the takeover (the dip). The gate is convergence,
  // not wall-clock: every write replicated before the kill survives
  // promotion, the client's final acked version equals the promoted
  // store's, and a fresh follower syncing from the new leader is
  // byte-identical.
  SignatureTable JSig = json::makeJsonSignature();
  double FirstWriteMs = -1, SteadyReadsPerMs = 0, DipReadsPerMs = 0,
         PostReadsPerMs = 0;
  uint64_t UnreplicatedAtKill = 0, FailoverResyncs = 0;
  bool FailoverOk = false;
  {
    auto AStore = std::make_unique<DocumentStore>(JSig);
    auto ALog = std::make_unique<replica::ReplicationLog>(*AStore);
    auto ALoop = std::make_unique<net::EventLoop>();
    replica::Leader::Config ALC;
    ALC.Epoch = 1;
    auto ALead = std::make_unique<replica::Leader>(*ALoop, *ALog, ALC);
    ALog->attach();
    bool Up = ALead->start();
    ServiceConfig FSC;
    FSC.Workers = 2;
    auto ASvc = std::make_unique<DiffService>(*AStore, FSC);
    auto AHandler = std::make_unique<net::ServiceHandler>(*ASvc);
    auto AFront = std::make_unique<net::NetServer>(*ALoop, JSig,
                                                  *AHandler,
                                                  net::NetServer::Config());
    Up = Up && AFront->start();
    ALoop->start();

    PromotableReplica B(JSig);
    Up = Up && B.Started && B.F->connectTo("127.0.0.1", ALead->port());

    const std::string AAddr = "127.0.0.1:" + std::to_string(AFront->port());
    const std::string BAddr =
        "127.0.0.1:" + std::to_string(B.ClientSrv->port());

    std::atomic<bool> StopWrites{false}, StopReads{false};
    std::atomic<bool> LeaderKilled{false};
    std::atomic<uint64_t> LastAcked{0}, FinalVersion{0}, WriteErrors{0},
        Resyncs{0};
    std::atomic<double> FirstOkAfterKill{-1};
    auto T0 = Clock::now();
    Clock::time_point KillAt; // written before LeaderKilled flips

    std::thread WriterThread([&] {
      client::ResilientClient::Config CC;
      CC.Endpoints = {AAddr, BAddr};
      CC.RequestTimeoutMs = 150;
      CC.MaxAttempts = 30;
      CC.BackoffBaseMs = 2;
      CC.BackoffCapMs = 40;
      CC.JitterSeed = 0x5eed;
      client::ResilientClient RC(CC);
      if (!RC.open(1, jsonArrayExpr(0)).Ok) {
        WriteErrors.fetch_add(1);
        return;
      }
      for (unsigned I = 1; !StopWrites.load(); ++I) {
        client::ResilientClient::Result R = RC.submit(1, jsonArrayExpr(I));
        if (R.Ok) {
          LastAcked.store(R.Version);
          if (LeaderKilled.load() && FirstOkAfterKill.load() < 0)
            FirstOkAfterKill.store(msSince(KillAt));
        } else if (R.Code == "cas_mismatch") {
          // The acked-but-unreplicated suffix died with the old leader;
          // resync the version cache and keep writing.
          RC.forgetVersion(1);
          Resyncs.fetch_add(1);
        } else {
          WriteErrors.fetch_add(1);
        }
      }
      client::ResilientClient::Result Fin = RC.get(1);
      if (Fin.Ok)
        FinalVersion.store(Fin.Version);
    });

    // Closed-loop ok-reads against the follower's port, bucketed so the
    // takeover dip is visible at 25ms resolution.
    const double BucketMs = 25;
    std::vector<uint64_t> Buckets(64, 0);
    std::thread ReaderThread([&] {
      uint16_t Port = B.ClientSrv->port();
      while (!StopReads.load()) {
        int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (Fd < 0)
          return;
        sockaddr_in SA{};
        SA.sin_family = AF_INET;
        SA.sin_port = htons(Port);
        SA.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) !=
            0) {
          ::close(Fd);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        const std::string Cmd = "get 1\n";
        std::string Buf;
        char Tmp[4096];
        bool Alive = true;
        while (Alive && !StopReads.load()) {
          if (::send(Fd, Cmd.data(), Cmd.size(), MSG_NOSIGNAL) !=
              static_cast<ssize_t>(Cmd.size()))
            break;
          for (;;) {
            size_t End = Buf.find("\n.\n");
            if (End != std::string::npos) {
              if (Buf.compare(0, 3, "ok ") == 0) {
                size_t Idx = static_cast<size_t>(msSince(T0) / BucketMs);
                ++Buckets[std::min(Idx, Buckets.size() - 1)];
              }
              Buf.erase(0, End + 3);
              break;
            }
            ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
            if (N <= 0) {
              Alive = false;
              break;
            }
            Buf.append(Tmp, static_cast<size_t>(N));
          }
        }
        ::close(Fd);
      }
    });

    // Steady state, then the kill: stop the leader's loop (every socket
    // dies) and its service. The follower's applied version at this
    // instant is the durable floor promotion must preserve.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    uint64_t DurableVersion = B.F->read(1).Version;
    uint64_t AckedAtKill = LastAcked.load();
    KillAt = Clock::now();
    double KillMs = msSince(T0);
    ALoop->stop();
    ASvc->shutdown();
    LeaderKilled.store(true);

    // Operator reaction delay, then promote the follower in place.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    bool Promoted = B.promote(2);

    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    StopWrites.store(true);
    WriterThread.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    StopReads.store(true);
    ReaderThread.join();
    double EndMs = msSince(T0);

    FirstWriteMs = FirstOkAfterKill.load();
    FailoverResyncs = Resyncs.load();
    UnreplicatedAtKill =
        AckedAtKill > DurableVersion ? AckedAtKill - DurableVersion : 0;

    // Bucket arithmetic: steady excludes the warmup bucket, the dip
    // window covers 200ms from the kill, post is everything after it up
    // to the last complete bucket.
    size_t KillBucket = static_cast<size_t>(KillMs / BucketMs);
    size_t LastBucket = std::min(
        static_cast<size_t>(EndMs / BucketMs), Buckets.size() - 1);
    size_t DipEnd = std::min(KillBucket + 8, LastBucket);
    auto MeanPerMs = [&](size_t Lo, size_t Hi) { // [Lo, Hi)
      if (Hi <= Lo)
        return 0.0;
      uint64_t Sum = 0;
      for (size_t I = Lo; I != Hi; ++I)
        Sum += Buckets[I];
      return static_cast<double>(Sum) /
             (static_cast<double>(Hi - Lo) * BucketMs);
    };
    SteadyReadsPerMs = MeanPerMs(1, KillBucket);
    DipReadsPerMs = SteadyReadsPerMs;
    for (size_t I = KillBucket; I < DipEnd; ++I)
      DipReadsPerMs = std::min(
          DipReadsPerMs, static_cast<double>(Buckets[I]) / BucketMs);
    PostReadsPerMs = MeanPerMs(DipEnd, LastBucket);

    // Convergence: the promoted store kept every durable write, agrees
    // with the client's final acked version, and replicates
    // byte-identically to a fresh follower.
    bool Converged = false;
    if (Promoted) {
      DocumentSnapshot Snap = B.Store->snapshot(1);
      BenchFollower Late(JSig);
      bool LateUp = Late.F->connectTo("127.0.0.1", B.Lead->port());
      auto L0 = Clock::now();
      while (LateUp &&
             !(Late.F->caughtUp() &&
               Late.F->lastSeq() == B.Log->currentSeq()) &&
             msSince(L0) < 15000)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      replica::Follower::ReadResult RR = Late.F->read(1);
      Converged = Snap.Ok && RR.Ok && RR.UriText == Snap.UriText &&
                  Snap.Version >= DurableVersion &&
                  Snap.Version == FinalVersion.load();
    }
    FailoverOk = Up && Promoted && Converged && FirstWriteMs >= 0 &&
                 WriteErrors.load() == 0;

    std::printf("\n%-10s %14s %12s %12s %12s\n", "failover", "1st write ms",
                "steady r/ms", "dip r/ms", "post r/ms");
    std::printf("%-10s %14.1f %12.1f %12.1f %12.1f\n", "kill+promote",
                FirstWriteMs, SteadyReadsPerMs, DipReadsPerMs,
                PostReadsPerMs);
    std::printf("# acked-unreplicated at kill: %llu, cas resyncs: %llu, "
                "converged: %s\n",
                static_cast<unsigned long long>(UnreplicatedAtKill),
                static_cast<unsigned long long>(FailoverResyncs),
                FailoverOk ? "yes" : "NO");
  }

  Report.scalar("failover_first_write", "ms", FirstWriteMs);
  Report.scalar("failover_reads_steady", "reads_per_ms", SteadyReadsPerMs);
  Report.scalar("failover_reads_dip", "reads_per_ms", DipReadsPerMs);
  Report.scalar("failover_reads_post", "reads_per_ms", PostReadsPerMs);
  Report.scalar("failover_unreplicated_at_kill", "writes",
                static_cast<double>(UnreplicatedAtKill));
  Report.scalar("failover_cas_resyncs", "writes",
                static_cast<double>(FailoverResyncs));
  Report.meta("failover_ok", FailoverOk ? "yes" : "no");

  // Phase 7: integrity. The scrubber's value proposition is
  // "continuous verification at a bounded serving cost", so the same
  // closed-loop multi-client workload is measured with the background
  // scrubber off and then on (digest recomputation plus disk CRC walks
  // against a live persistence instance), interleaved best-of-2 rounds
  // to cancel machine drift, and the run fails if verification costs
  // more than 5% goodput. The scrub-on rounds double as the
  // false-positive gate: a clean workload must scrub to zero findings.
  // Then one document's digest cache is corrupted in place and the
  // phase reports how long the running scrubber takes to detect
  // (quarantine) and repair it back to byte identity from snapshot+WAL.
  double ScrubOffPerMs = 0, ScrubOnPerMs = 0;
  double ScrubOffP99 = 0, ScrubOnP99 = 0;
  double DetectMs = -1, RepairMs = -1;
  bool ScrubClean = false, ScrubRepaired = false;
  uint64_t ScrubCycles = 0;
  {
    const std::string IntA = MakePy(5000), IntB = MakePy(6000);
    const unsigned IntClients = 4;
    const size_t IntDocs = 8; // per-client document striping below
    ServiceConfig IntCfg;
    IntCfg.Workers = 4;
    IntCfg.QueueCapacity = 256;

    ScratchDir Dir;
    DocumentStore Store(Sig);
    persist::Persistence::Config PC;
    PC.Dir = Dir.path();
    PC.FsyncEvery = 32;
    PC.SegmentBytes = 256 * 1024; // rotate: closed segments to CRC-walk
    PC.SnapshotEvery = 0;         // no background pass: the scrubber is
    PC.BackgroundIntervalMs = 0;  // the only thread touching old files
    persist::Persistence Persist(Sig, PC);
    if (Dir.ok())
      Persist.attach(Store);
    DiffService Service(Store, IntCfg);

    bool Opened = Dir.ok();
    for (size_t D = 1; Opened && D <= IntDocs; ++D)
      Opened = Service.open(static_cast<DocId>(D), pythonBuilder(&IntA)).Ok;
    for (int I = 0; Opened && I < 40; ++I) // warm parser, EWMA, WAL
      Service.submit(static_cast<DocId>(1 + (I % IntDocs)),
                     pythonBuilder(I % 2 != 0 ? &IntB : &IntA));

    // Closed-loop measurement: each client thread round-robins its own
    // stripe of documents; returns {goodput ops/ms, p99 ms}.
    auto MeasureLoop = [&](double WindowMs) {
      std::vector<std::thread> Threads;
      std::mutex LatMu;
      std::vector<double> LatMs;
      std::atomic<uint64_t> OkOps{0};
      auto T0 = Clock::now();
      for (unsigned C = 0; C != IntClients; ++C)
        Threads.emplace_back([&, C] {
          std::vector<double> Local;
          for (unsigned I = 0; msSince(T0) < WindowMs; ++I) {
            DocId Doc = static_cast<DocId>(
                1 + C + (I % (IntDocs / IntClients)) * IntClients);
            auto S0 = Clock::now();
            Response R = Service.submit(
                Doc, pythonBuilder((I + C) % 2 != 0 ? &IntB : &IntA));
            Local.push_back(msSince(S0));
            if (R.Ok)
              OkOps.fetch_add(1);
          }
          std::lock_guard<std::mutex> Lock(LatMu);
          LatMs.insert(LatMs.end(), Local.begin(), Local.end());
        });
      for (std::thread &T : Threads)
        T.join();
      double Wall = msSince(T0);
      std::sort(LatMs.begin(), LatMs.end());
      double P99 = LatMs.empty()
                       ? 0
                       : LatMs[std::min(LatMs.size() - 1,
                                        LatMs.size() * 99 / 100)];
      return std::make_pair(static_cast<double>(OkOps.load()) / Wall, P99);
    };

    // Scrubber stop() is terminal (one start per instance, like the
    // service lifecycle), so the off rounds run first and one scrubber
    // then stays up through the on rounds and the repair experiment.
    integrity::Scrubber::Config SC;
    SC.IntervalMs = 10;  // continuously active across the window
    SC.RatePerSec = 500; // the deployment story: paced, not greedy
    SC.NumShards = Store.config().NumShards;
    integrity::Scrubber Scrub(Store, SC, &Persist);

    const double WindowMs = 250;
    for (int Round = 0; Opened && Round < 2; ++Round) {
      auto Off = MeasureLoop(WindowMs);
      if (Off.first > ScrubOffPerMs) {
        ScrubOffPerMs = Off.first;
        ScrubOffP99 = Off.second;
      }
    }
    Scrub.start();
    for (int Round = 0; Opened && Round < 2; ++Round) {
      auto On = MeasureLoop(WindowMs);
      if (On.first > ScrubOnPerMs) {
        ScrubOnPerMs = On.first;
        ScrubOnP99 = On.second;
      }
    }

    // False-positive gate: every cycle above scrubbed healthy state.
    integrity::Scrubber::Stats Clean = Scrub.stats();
    ScrubCycles = Clean.Cycles;
    ScrubClean = Clean.Cycles > 0 && Clean.DigestMismatches == 0 &&
                 Clean.WalCrcErrors == 0 && Clean.SnapshotErrors == 0 &&
                 Clean.Quarantined == 0 && Clean.RepairsFailed == 0;

    // Detection and repair: corrupt one live document's digest cache,
    // then clock the running scrubber. Flush first so durable state
    // can prove the live version (repair refuses to roll a document
    // back).
    DocumentSnapshot Before = Store.snapshot(2);
    if (Opened && Before.Ok) {
      Persist.flush();
      Store.corruptDigestForTest(2);
      uint64_t BaseMismatches = Clean.DigestMismatches;
      auto C0 = Clock::now();
      while (msSince(C0) < 5000) {
        integrity::Scrubber::Stats Now = Scrub.stats();
        if (DetectMs < 0 && Now.DigestMismatches > BaseMismatches)
          DetectMs = msSince(C0);
        if (DetectMs >= 0 && !Store.quarantineInfo(2)) {
          RepairMs = msSince(C0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Scrub.stop();
      DocumentSnapshot After = Store.snapshot(2);
      ScrubRepaired = DetectMs >= 0 && RepairMs >= 0 && After.Ok &&
                      !After.Quarantined && After.UriText == Before.UriText &&
                      After.Version == Before.Version &&
                      !Store.checkDigests(2).has_value();
    }
    Service.shutdown();
  }

  double ScrubPenalty =
      ScrubOffPerMs == 0 ? 1.0 : 1.0 - ScrubOnPerMs / ScrubOffPerMs;
  bool ScrubOk = ScrubOffPerMs > 0 && ScrubPenalty <= 0.05 && ScrubClean &&
                 ScrubRepaired;

  std::printf("\n%-12s %12s %12s %12s %12s\n", "integrity", "ops/ms",
              "p99 ms", "detect ms", "repair ms");
  std::printf("%-12s %12.2f %12.2f %12s %12s\n", "scrub-off", ScrubOffPerMs,
              ScrubOffP99, "-", "-");
  std::printf("%-12s %12.2f %12.2f %12.1f %12.1f\n", "scrub-on", ScrubOnPerMs,
              ScrubOnP99, DetectMs, RepairMs);
  std::printf("# goodput penalty: %.1f%%, cycles: %llu, clean findings: %s, "
              "repaired byte-identical: %s\n",
              ScrubPenalty * 100.0,
              static_cast<unsigned long long>(ScrubCycles),
              ScrubClean ? "zero" : "NONZERO", ScrubRepaired ? "yes" : "NO");

  Report.scalar("scrub_off_goodput", "ops_per_ms", ScrubOffPerMs);
  Report.scalar("scrub_on_goodput", "ops_per_ms", ScrubOnPerMs);
  Report.scalar("scrub_off_p99", "ms", ScrubOffP99);
  Report.scalar("scrub_on_p99", "ms", ScrubOnP99);
  Report.scalar("scrub_goodput_penalty", "ratio", ScrubPenalty);
  Report.scalar("scrub_time_to_detect", "ms", DetectMs);
  Report.scalar("scrub_time_to_repair", "ms", RepairMs);
  Report.meta("scrub_ok", ScrubOk ? "yes" : "no");
  Report.write();

  std::printf("\n# aggregate nodes/ms %s monotonically (within 10%% noise) "
              "with workers, 1..%u\n",
              Monotone ? "increased" : "did NOT increase", MaxWorkers);
  bool CacheOk = Identical && Ratio >= 2.0;
  if (!CacheOk)
    std::printf("# FAIL: digest cache must keep scripts byte-identical and "
                "reach 2x cold throughput\n");
  bool PolicyOk = PolicyIdentical && PolicyRatio >= 2.0;
  if (!PolicyOk)
    std::printf("# FAIL: the fast digest policy must keep scripts "
                "byte-identical and reach 2x SHA-256 cold throughput\n");
  if (!FallbackOk)
    std::printf("# FAIL: fallback path must answer every commit with a "
                "(larger) replace-root script\n");
  if (!OverloadOk)
    std::printf("# FAIL: under 4x overload, goodput must stay within 20%% "
                "of capacity, the cold tenant must be fully served with "
                "bounded p99, and every shed carries a retry hint\n");
  if (!FailoverOk)
    std::printf("# FAIL: after killing the leader mid-load, the promoted "
                "follower must serve the client's writes and converge "
                "byte-identically with no durable write lost\n");
  if (!ScrubOk)
    std::printf("# FAIL: the background scrubber must cost at most 5%% "
                "goodput, find nothing on a clean run, and detect+repair "
                "an injected corruption to byte identity\n");
  return Monotone && CacheOk && PolicyOk && FallbackOk && OverloadOk &&
                 FailoverOk && ScrubOk
             ? 0
             : 1;
}

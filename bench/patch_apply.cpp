//===- bench/patch_apply.cpp - Micro-benchmarks (google-benchmark) ---------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks for the building blocks the paper's claims rest on:
///
///  - MTree patching handles each edit in constant time (Section 3.2,
///    "This allows us to process edit operations in constant time");
///  - SHA-256 hashing and hashed tree construction (Step 1 cost);
///  - the linear type checker;
///  - end-to-end truediff on a fixed mid-size pair.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "incremental/Index.h"
#include "python/Python.h"
#include "support/Sha256.h"
#include "truechange/MTree.h"
#include "truechange/TypeChecker.h"
#include "truediff/TrueDiff.h"

#include <benchmark/benchmark.h>

using namespace truediff;

namespace {

/// Shared fixture data: one generated module and a mutated version, plus
/// the truediff script between them.
struct Fixture {
  Fixture() : Sig(python::makePythonSignature()), Ctx(Sig) {
    Rng R(99);
    corpus::PyGenOptions Gen;
    Gen.NumFunctions = 30;
    Base = corpus::generateModule(Ctx, R, Gen);
    Target = corpus::mutateModule(Ctx, R, Base);
    Tree *Src = Ctx.deepCopy(Base);
    TrueDiff Differ(Ctx);
    DiffResult Result = Differ.compareTo(Src, Ctx.deepCopy(Target));
    Script = std::move(Result.Script);
  }

  SignatureTable Sig;
  TreeContext Ctx;
  Tree *Base;
  Tree *Target;
  EditScript Script;
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_Sha256Throughput(benchmark::State &State) {
  std::string Data(static_cast<size_t>(State.range(0)), 'x');
  for (auto _ : State) {
    Digest D = Sha256::hash(Data);
    benchmark::DoNotOptimize(D);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          State.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_TreeConstructionWithHashes(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    Tree *Copy = F.Ctx.deepCopy(F.Base);
    benchmark::DoNotOptimize(Copy);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(F.Base->size()));
}
BENCHMARK(BM_TreeConstructionWithHashes);

void BM_MTreePatchPerEdit(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    State.PauseTiming();
    MTree M = MTree::fromTree(F.Sig, F.Base);
    State.ResumeTiming();
    auto R = M.patch(F.Script);
    benchmark::DoNotOptimize(R.Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(F.Script.size()));
}
BENCHMARK(BM_MTreePatchPerEdit);

void BM_LinearTypeChecker(benchmark::State &State) {
  Fixture &F = fixture();
  LinearTypeChecker Checker(F.Sig);
  for (auto _ : State) {
    auto R = Checker.checkWellTyped(F.Script);
    benchmark::DoNotOptimize(R.Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(F.Script.size()));
}
BENCHMARK(BM_LinearTypeChecker);

void BM_TrueDiffEndToEnd(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    Tree *Src = F.Ctx.deepCopy(F.Base);
    Tree *Dst = F.Ctx.deepCopy(F.Target);
    TrueDiff Differ(F.Ctx);
    DiffResult R = Differ.compareTo(Src, Dst);
    benchmark::DoNotOptimize(R.Patched);
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations()) *
      static_cast<int64_t>(F.Base->size() + F.Target->size()));
}
BENCHMARK(BM_TrueDiffEndToEnd);

void BM_OneToOneIndexOps(benchmark::State &State) {
  // The encoding enabled by type-safe edit scripts (paper Section 6).
  for (auto _ : State) {
    incremental::BidirectionalOneToOneIndex<uint64_t, uint64_t> Idx;
    for (uint64_t I = 0; I != 1000; ++I)
      Idx.put(I, I + 1000000);
    for (uint64_t I = 0; I != 1000; ++I) {
      benchmark::DoNotOptimize(Idx.get(I));
      benchmark::DoNotOptimize(Idx.getReverse(I + 1000000));
    }
    for (uint64_t I = 0; I != 1000; ++I)
      Idx.eraseKey(I);
    benchmark::DoNotOptimize(Idx.size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 4000);
}
BENCHMARK(BM_OneToOneIndexOps);

void BM_ManyToOneIndexOps(benchmark::State &State) {
  // The weaker encoding untyped edit scripts force: set operations on
  // every access.
  for (auto _ : State) {
    incremental::BidirectionalManyToOneIndex<uint64_t, uint64_t> Idx;
    for (uint64_t I = 0; I != 1000; ++I)
      Idx.put(I, I + 1000000);
    for (uint64_t I = 0; I != 1000; ++I) {
      benchmark::DoNotOptimize(Idx.get(I));
      benchmark::DoNotOptimize(Idx.getReverse(I + 1000000));
    }
    for (uint64_t I = 0; I != 1000; ++I)
      Idx.eraseKey(I);
    benchmark::DoNotOptimize(Idx.size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 4000);
}
BENCHMARK(BM_ManyToOneIndexOps);

void BM_PythonParse(benchmark::State &State) {
  Fixture &F = fixture();
  std::string Source = python::unparsePython(F.Sig, F.Base);
  for (auto _ : State) {
    TreeContext Local(F.Sig);
    auto R = python::parsePython(Local, Source);
    benchmark::DoNotOptimize(R.Module);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Source.size()));
}
BENCHMARK(BM_PythonParse);

} // namespace

BENCHMARK_MAIN();

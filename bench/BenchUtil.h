//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches: wall-clock timing,
/// fastest-of-N measurement (the paper takes the fastest of three runs,
/// Section 6 "Setup"), corpus loading, and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_BENCH_BENCHUTIL_H
#define TRUEDIFF_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "support/Stats.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace truediff {
namespace bench {

using Clock = std::chrono::steady_clock;

inline double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Runs \p Fn \p Runs times and returns the fastest wall time in ms.
inline double fastestMs(unsigned Runs, const std::function<void()> &Fn) {
  double Best = 1e300;
  for (unsigned I = 0; I != Runs; ++I) {
    auto Start = Clock::now();
    Fn();
    Best = std::min(Best, msSince(Start));
  }
  return Best;
}

/// Builds the default evaluation corpus. NumPairs scales run time;
/// overridable via argv[1].
inline std::vector<corpus::CommitPair> defaultCorpus(int Argc, char **Argv,
                                                     unsigned NumPairs) {
  corpus::CorpusOptions Opts;
  Opts.NumPairs = NumPairs;
  if (Argc > 1)
    Opts.NumPairs = static_cast<unsigned>(std::atoi(Argv[1]));
  std::printf("# corpus: %u commit pairs (seed %llu)\n", Opts.NumPairs,
              static_cast<unsigned long long>(Opts.Seed));
  return corpus::buildCommitCorpus(Opts);
}

inline void printHeader(const char *Title) {
  std::printf("\n== %s ==\n", Title);
  std::printf("%-28s %10s %10s %10s %10s %12s %10s %8s\n", "series", "min",
              "q1", "median", "q3", "max", "mean", "n");
}

inline void printRow(const std::string &Label,
                     const std::vector<double> &Values) {
  std::printf("%s\n", formatBoxRow(Label, BoxStats::of(Values)).c_str());
}

} // namespace bench
} // namespace truediff

#endif // TRUEDIFF_BENCH_BENCHUTIL_H

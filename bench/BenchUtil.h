//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++-*-===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches: wall-clock timing,
/// fastest-of-N measurement (the paper takes the fastest of three runs,
/// Section 6 "Setup"), corpus loading, and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef TRUEDIFF_BENCH_BENCHUTIL_H
#define TRUEDIFF_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "support/Stats.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace truediff {
namespace bench {

using Clock = std::chrono::steady_clock;

inline double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Runs \p Fn \p Runs times and returns the fastest wall time in ms.
inline double fastestMs(unsigned Runs, const std::function<void()> &Fn) {
  double Best = 1e300;
  for (unsigned I = 0; I != Runs; ++I) {
    auto Start = Clock::now();
    Fn();
    Best = std::min(Best, msSince(Start));
  }
  return Best;
}

/// Parses a positive integer CLI argument. Unlike std::atoi, garbage,
/// trailing junk, negative values, and out-of-range inputs fail loudly
/// instead of silently becoming 0 (which turns a bench into a no-op).
inline unsigned parseCountArg(const char *Arg, const char *What) {
  errno = 0;
  char *End = nullptr;
  long Value = std::strtol(Arg, &End, 10);
  if (End == Arg || *End != '\0' || errno == ERANGE || Value <= 0 ||
      Value > 0x7FFFFFFFL) {
    std::fprintf(stderr, "error: invalid %s '%s' (expected a positive integer)\n",
                 What, Arg);
    std::exit(2);
  }
  return static_cast<unsigned>(Value);
}

/// Builds the default evaluation corpus. NumPairs scales run time;
/// overridable via argv[1].
inline std::vector<corpus::CommitPair> defaultCorpus(int Argc, char **Argv,
                                                     unsigned NumPairs) {
  corpus::CorpusOptions Opts;
  Opts.NumPairs = NumPairs;
  if (Argc > 1)
    Opts.NumPairs = parseCountArg(Argv[1], "pair count");
  std::printf("# corpus: %u commit pairs (seed %llu)\n", Opts.NumPairs,
              static_cast<unsigned long long>(Opts.Seed));
  return corpus::buildCommitCorpus(Opts);
}

inline void printHeader(const char *Title) {
  std::printf("\n== %s ==\n", Title);
  std::printf("%-28s %10s %10s %10s %10s %12s %10s %8s\n", "series", "min",
              "q1", "median", "q3", "max", "mean", "n");
}

inline void printRow(const std::string &Label,
                     const std::vector<double> &Values) {
  std::printf("%s\n", formatBoxRow(Label, BoxStats::of(Values)).c_str());
}

//===----------------------------------------------------------------------===//
// Machine-readable results: every bench writes one BENCH_<name>.json with
// the same schema, so the perf trajectory stays comparable across PRs:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "meta": {"<key>": <number-or-string>, ...},
//     "series": [
//       {"name": "...", "unit": "...",
//        "stats": {"min":..,"q1":..,"median":..,"q3":..,"max":..,
//                  "mean":..,"n":..}},
//       ...
//     ]
//   }
//===----------------------------------------------------------------------===//

inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      (Out += '\\') += C;
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Name(std::move(BenchName)) {}

  void meta(const std::string &Key, double Value) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%g", Value);
    MetaItems.push_back("\"" + jsonEscape(Key) + "\":" + Buf);
  }

  void meta(const std::string &Key, const std::string &Value) {
    MetaItems.push_back("\"" + jsonEscape(Key) + "\":\"" + jsonEscape(Value) +
                        "\"");
  }

  /// Adds one series, summarised as box stats over \p Values.
  void add(const std::string &Series, const std::string &Unit,
           const std::vector<double> &Values) {
    BoxStats S = BoxStats::of(Values);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"min\":%g,\"q1\":%g,\"median\":%g,\"q3\":%g,"
                  "\"max\":%g,\"mean\":%g,\"n\":%zu}",
                  S.Min, S.Q1, S.Median, S.Q3, S.Max, S.Mean, S.Count);
    SeriesItems.push_back("{\"name\":\"" + jsonEscape(Series) +
                          "\",\"unit\":\"" + jsonEscape(Unit) +
                          "\",\"stats\":" + Buf + "}");
  }

  /// Adds a single-valued series (a scalar measurement).
  void scalar(const std::string &Series, const std::string &Unit,
              double Value) {
    add(Series, Unit, std::vector<double>{Value});
  }

  /// Writes BENCH_<name>.json into the working directory.
  void write() const {
    std::string Path = "BENCH_" + Name + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (F == nullptr) {
      std::printf("# failed to write %s\n", Path.c_str());
      return;
    }
    std::string Out = "{\"schema_version\":1,\"bench\":\"" + jsonEscape(Name) +
                      "\",\"meta\":{";
    for (size_t I = 0; I != MetaItems.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += MetaItems[I];
    }
    Out += "},\"series\":[";
    for (size_t I = 0; I != SeriesItems.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += SeriesItems[I];
    }
    Out += "]}\n";
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
    std::printf("# wrote %s\n", Path.c_str());
  }

private:
  std::string Name;
  std::vector<std::string> MetaItems;
  std::vector<std::string> SeriesItems;
};

} // namespace bench
} // namespace truediff

#endif // TRUEDIFF_BENCH_BENCHUTIL_H

//===- bench/incremental_inca.cpp - Section 6 incremental computing --------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's incremental-computing case study (Section 6):
/// an IncA-style driver that, per commit, reparses the file, diffs with
/// truediff, and processes the edit script to update a fact database and
/// two analyses. Reports:
///
///  - incremental step time (parse + diff + db + analysis) vs full
///    reanalysis per commit, as box plots;
///  - the dirty-function fraction (how little is reanalyzed);
///  - database update throughput with the type-safe one-to-one index vs
///    the many-to-one index untyped scripts would force.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incremental/Pipeline.h"

using namespace truediff;
using namespace truediff::bench;
using namespace truediff::incremental;

int main(int Argc, char **Argv) {
  std::printf("incremental_inca: edit-script-driven incremental analysis "
              "(paper Section 6)\n");

  unsigned NumCommits = 60;
  if (Argc > 1)
    NumCommits = parseCountArg(Argv[1], "commit count");

  // One large file with a long history.
  SignatureTable Sig = python::makePythonSignature();
  TreeContext Gen(Sig);
  Rng R(4242);
  corpus::PyGenOptions GenOpts;
  GenOpts.NumFunctions = 60;
  GenOpts.NumClasses = 6;
  Tree *Module = corpus::generateModule(Gen, R, GenOpts);
  std::string Source = python::unparsePython(Sig, Module);
  std::printf("# file: %llu AST nodes, %u commits\n",
              static_cast<unsigned long long>(Module->size()), NumCommits);

  std::vector<std::string> History{Source};
  Tree *Cur = Module;
  for (unsigned I = 0; I != NumCommits; ++I) {
    Cur = corpus::mutateModule(Gen, R, Cur);
    History.push_back(python::unparsePython(Sig, Cur));
  }

  JsonReport Report("incremental_inca");
  Report.meta("nodes", static_cast<double>(Module->size()));
  Report.meta("commits", static_cast<double>(NumCommits));

  for (IndexMode Mode : {IndexMode::OneToOne, IndexMode::ManyToOne}) {
    const char *ModeName =
        Mode == IndexMode::OneToOne ? "one-to-one" : "many-to-one";
    IncrementalPipeline Pipeline(Mode);
    if (!Pipeline.init(History[0])) {
      std::printf("parse error on initial source\n");
      return 1;
    }

    std::vector<double> StepMs, ParseMs, DiffMs, DbMs, AnalysisMs, FullMs,
        FullBuildMs, Speedup, AnalysisSpeedup, DirtyFrac;
    for (size_t I = 1; I < History.size(); ++I) {
      auto Full = Pipeline.fullReanalysis(History[I]);
      auto Stats = Pipeline.step(History[I]);
      if (!Stats)
        continue;
      StepMs.push_back(Stats->totalMs());
      ParseMs.push_back(Stats->ParseMs);
      DiffMs.push_back(Stats->DiffMs);
      DbMs.push_back(Stats->DbMs);
      AnalysisMs.push_back(Stats->AnalysisMs);
      FullMs.push_back(Full.totalMs());
      FullBuildMs.push_back(Full.BuildMs);
      if (Stats->totalMs() > 0)
        Speedup.push_back(Full.totalMs() / Stats->totalMs());
      // The paper's comparison: maintaining the derived facts through the
      // edit script vs recomputing them; parsing happens either way.
      double IncrementalAnalysis = Stats->DbMs + Stats->AnalysisMs;
      if (IncrementalAnalysis > 0)
        AnalysisSpeedup.push_back(Full.BuildMs / IncrementalAnalysis);
      if (Stats->TotalFunctions > 0)
        DirtyFrac.push_back(static_cast<double>(Stats->DirtyFunctions) /
                            static_cast<double>(Stats->TotalFunctions));
    }

    std::printf("\n--- index mode: %s ---\n", ModeName);
    printHeader("per-commit times (ms)");
    printRow("incremental step (total)", StepMs);
    printRow("  parse", ParseMs);
    printRow("  truediff", DiffMs);
    printRow("  db update", DbMs);
    printRow("  analysis update", AnalysisMs);
    printRow("full reanalysis (total)", FullMs);
    printRow("  db + analyses rebuild", FullBuildMs);
    printHeader("derived");
    printRow("speedup incl. parse+diff", Speedup);
    printRow("analysis-only speedup", AnalysisSpeedup);
    printRow("dirty function fraction", DirtyFrac);

    std::string Prefix =
        Mode == IndexMode::OneToOne ? "one_to_one_" : "many_to_one_";
    Report.add(Prefix + "step", "ms", StepMs);
    Report.add(Prefix + "full", "ms", FullMs);
    Report.add(Prefix + "db_update", "ms", DbMs);
    Report.add(Prefix + "speedup", "ratio", Speedup);
    Report.add(Prefix + "analysis_speedup", "ratio", AnalysisSpeedup);
    Report.add(Prefix + "dirty_fraction", "ratio", DirtyFrac);
  }
  Report.write();

  std::printf("\n# type-safe scripts permit the one-to-one index; untyped "
              "scripts would force many-to-one (paper Section 6)\n");
  return 0;
}

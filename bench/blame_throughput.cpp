//===- bench/blame_throughput.cpp - Blame query cost vs chain length -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the blame subsystem's core performance claim: a blame query
/// against the incrementally maintained provenance index costs O(1) --
/// one hash probe -- regardless of how many revisions the document has
/// seen, where a replay-based blame (fold the full script stream, then
/// answer) grows linearly with the chain.
///
/// For revision chains of 10, 100, and 1000 authored submits over a
/// corpus-generated JSON document, the bench times
///
///   index   single-node blameNode() probes against the live index
///   tree    whole-tree blame rendering (tree walk, no history)
///   replay  fold-from-scratch of the captured stream + one probe,
///           what serving blame without the index would cost
///
/// and reports everything into BENCH_blame.json. The acceptance gate --
/// index queries at 1000 revisions at least 10x faster than replay-based
/// blame -- is checked and printed.
///
///   blame_throughput [probes-per-batch]
///
//===----------------------------------------------------------------------===//

#include "blame/Provenance.h"
#include "blame/Render.h"
#include "corpus/JsonGen.h"
#include "json/Json.h"
#include "persist/BinaryCodec.h"
#include "service/DocumentStore.h"
#include "support/Rng.h"

#include "BenchUtil.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace truediff;
using namespace truediff::bench;

namespace {

service::TreeBuilder blobBuilder(const SignatureTable &Sig, std::string Blob) {
  return [&Sig, Blob = std::move(Blob)](
             TreeContext &Ctx) -> service::BuildResult {
    persist::DecodeTreeResult D =
        persist::decodeTree(Sig, Ctx, Blob, /*PreserveUris=*/false);
    if (!D.ok())
      return {nullptr, D.Error, service::ErrCode::MalformedFrame};
    return {D.Root, "", service::ErrCode::None};
  };
}

/// One captured stream event, the input a replay-based blame would fold.
struct StreamEvent {
  uint64_t Version = 0;
  service::DocumentStore::StoreOp Op = service::DocumentStore::StoreOp::Open;
  std::string Author;
  EditScript Script;
};

/// Every URI in a whole-tree blame payload ("<tag>#<uri> ..." lines).
std::vector<URI> liveUris(const std::string &Payload) {
  std::vector<URI> Out;
  size_t Pos = 0;
  while ((Pos = Payload.find('#', Pos)) != std::string::npos) {
    Out.push_back(std::strtoull(Payload.c_str() + Pos + 1, nullptr, 10));
    ++Pos;
  }
  return Out;
}

struct ChainResult {
  double IndexUsPerQuery = 0;
  double TreeMsPerRender = 0;
  double ReplayMsPerQuery = 0;
};

/// Builds a document with \p Revisions authored submits, then times the
/// three blame strategies against its final state.
ChainResult runChain(const SignatureTable &Sig, unsigned Revisions,
                     unsigned Probes) {
  static const char *const Authors[] = {"ada", "grace", "barbara", "edsger"};
  service::DocumentStore Store(Sig);
  blame::ProvenanceIndex Prov;
  Prov.attach(Store);
  std::vector<StreamEvent> Log;
  Store.addScriptListener([&Log](service::DocId, uint64_t Version,
                                 service::DocumentStore::StoreOp Op,
                                 const EditScript &Script,
                                 const service::DocumentStore::ScriptInfo &I) {
    Log.push_back({Version, Op, std::string(I.Author), Script});
  });

  Rng R(0xb1a3e000 + Revisions);
  TreeContext Ctx(Sig);
  corpus::JsonGenOptions Opts;
  Opts.MaxDepth = 4;
  Opts.MaxFanout = 5;
  Tree *T = corpus::generateJson(Ctx, R, Opts);
  service::StoreResult SR =
      Store.open(1, blobBuilder(Sig, persist::encodeTree(Sig, T)), "ada");
  if (!SR.Ok) {
    std::fprintf(stderr, "open failed: %s\n", SR.Error.c_str());
    std::exit(1);
  }
  for (unsigned I = 0; I != Revisions; ++I) {
    T = corpus::mutateJson(Ctx, R, T);
    service::SubmitOptions SubOpts;
    SubOpts.Author = Authors[R.below(4)];
    SR = Store.submit(1, blobBuilder(Sig, persist::encodeTree(Sig, T)),
                      SubOpts);
    if (!SR.Ok) {
      std::fprintf(stderr, "submit failed: %s\n", SR.Error.c_str());
      std::exit(1);
    }
  }

  service::Response Tree = blame::blameResponse(Store, Prov, 1, false, NullURI);
  if (!Tree.Ok) {
    std::fprintf(stderr, "blame failed: %s\n", Tree.Error.c_str());
    std::exit(1);
  }
  std::vector<URI> Uris = liveUris(Tree.Payload);

  ChainResult Out;

  // Index probes: cycle through every live node; cost must not depend
  // on the revision count.
  blame::NodeProvenance P;
  uint64_t Sink = 0;
  double BatchMs = fastestMs(3, [&] {
    for (unsigned I = 0; I != Probes; ++I) {
      Prov.blameNode(1, Uris[I % Uris.size()], P);
      Sink += P.LastVersion;
    }
  });
  Out.IndexUsPerQuery = BatchMs * 1000.0 / Probes;

  // Whole-tree rendering: linear in live nodes, still history-free.
  Out.TreeMsPerRender = fastestMs(3, [&] {
    service::Response B = blame::blameResponse(Store, Prov, 1, false, NullURI);
    Sink += B.Payload.size();
  });

  // Replay-based blame: what answering without a maintained index costs
  // -- fold the whole stream, then probe once.
  Out.ReplayMsPerQuery = fastestMs(3, [&] {
    blame::ProvenanceIndex Replay;
    for (const StreamEvent &E : Log)
      Replay.apply(1, E.Version, E.Op, E.Author, E.Script);
    Replay.blameNode(1, Uris[0], P);
    Sink += P.LastVersion;
  });

  if (Sink == 0xdeadbeef) // defeat dead-code elimination
    std::printf("#\n");
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Probes = 10000;
  if (Argc > 1)
    Probes = parseCountArg(Argv[1], "probe count");

  SignatureTable Sig = json::makeJsonSignature();
  const unsigned Chains[] = {10, 100, 1000};

  JsonReport Report("blame");
  Report.meta("probes_per_batch", static_cast<double>(Probes));

  std::printf("%-10s %16s %16s %16s\n", "revisions", "index us/query",
              "tree ms/render", "replay ms/query");
  double Index10 = 0, Index1000 = 0, Replay1000 = 0;
  for (unsigned Revisions : Chains) {
    ChainResult C = runChain(Sig, Revisions, Probes);
    std::printf("%-10u %16.3f %16.3f %16.3f\n", Revisions, C.IndexUsPerQuery,
                C.TreeMsPerRender, C.ReplayMsPerQuery);
    std::string Suffix = std::to_string(Revisions);
    Report.scalar("index_query_" + Suffix, "us", C.IndexUsPerQuery);
    Report.scalar("tree_render_" + Suffix, "ms", C.TreeMsPerRender);
    Report.scalar("replay_query_" + Suffix, "ms", C.ReplayMsPerQuery);
    if (Revisions == 10)
      Index10 = C.IndexUsPerQuery;
    if (Revisions == 1000) {
      Index1000 = C.IndexUsPerQuery;
      Replay1000 = C.ReplayMsPerQuery;
    }
  }

  // The two claims: query cost independent of chain length (allow noise;
  // a linear cost would be off by orders of magnitude, not a factor),
  // and the index at least 10x faster than replaying at 1000 revisions.
  double Flatness = Index1000 / (Index10 > 0 ? Index10 : 1);
  double Speedup = (Replay1000 * 1000.0) / (Index1000 > 0 ? Index1000 : 1);
  Report.meta("flatness_1000_vs_10", Flatness);
  Report.meta("replay_speedup_1000", Speedup);
  Report.write();

  std::printf("\nindex query at 1000 revisions vs 10 revisions: %.2fx\n",
              Flatness);
  std::printf("index query vs replay-based blame at 1000 revisions: %.0fx "
              "faster (%s, gate >= 10x)\n",
              Speedup, Speedup >= 10.0 ? "PASS" : "FAIL");
  return Speedup >= 10.0 ? 0 : 1;
}

//===- bench/fig4_conciseness.cpp - Reproduces paper Figure 4 --------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4 of the paper: edit-script conciseness as box plots of the
/// patch-size *difference* (left plot: hdiff - truediff and
/// gumtree - truediff) and the patch-size *ratio* (right plot:
/// hdiff/truediff and gumtree/truediff) over the commit corpus.
///
/// Patch sizes follow the paper's counting: compound edits for truediff
/// (Load+Attach / Detach+Unload of the same node count once), actions for
/// Gumtree, constructors mentioned in the rewriting for hdiff. Extra rows
/// report the Lempsink-style Cpy/Ins/Del baseline (DESIGN.md E7).
///
/// Expected shape: hdiff/truediff around an order of magnitude (paper:
/// mean 18.8x), gumtree/truediff near 1 (paper: mean 1.01x).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "lcsdiff/LcsDiff.h"
#include "python/Python.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::bench;

int main(int Argc, char **Argv) {
  std::printf("fig4_conciseness: patch-size difference and ratio "
              "(paper Figure 4)\n");
  SignatureTable Sig = python::makePythonSignature();
  std::vector<corpus::CommitPair> Pairs = defaultCorpus(Argc, Argv, 300);

  std::vector<double> TrueDiffSizes, GumtreeSizes, HdiffSizes, LcsSizes,
      LcsChanges;
  std::vector<double> HdiffMinusTruediff, GumtreeMinusTruediff,
      LcsMinusTruediff;
  std::vector<double> HdiffOverTruediff, GumtreeOverTruediff,
      LcsOverTruediff;

  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    gumtree::RoseForest Forest;
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    if (!Before.ok() || !After.ok())
      continue;

    hdiff::HDiff HDiffer(Ctx);
    double Hdiff = static_cast<double>(
        HDiffer.diff(Before.Module, After.Module).numConstructors());

    lcsdiff::LcsScript Lcs = lcsdiff::lcsDiff(Before.Module, After.Module);
    double LcsSize = static_cast<double>(Lcs.size());

    double Gumtree = static_cast<double>(
        gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Before.Module),
                             Forest.fromTree(Sig, After.Module))
            .patchSize());

    TrueDiff Differ(Ctx);
    double Truediff = static_cast<double>(
        Differ.compareTo(Before.Module, After.Module)
            .Script.coalescedSize());

    TrueDiffSizes.push_back(Truediff);
    GumtreeSizes.push_back(Gumtree);
    HdiffSizes.push_back(Hdiff);
    LcsSizes.push_back(LcsSize);
    LcsChanges.push_back(static_cast<double>(Lcs.numChanges()));

    HdiffMinusTruediff.push_back(Hdiff - Truediff);
    GumtreeMinusTruediff.push_back(Gumtree - Truediff);
    LcsMinusTruediff.push_back(LcsSize - Truediff);
    if (Truediff > 0) {
      HdiffOverTruediff.push_back(Hdiff / Truediff);
      GumtreeOverTruediff.push_back(Gumtree / Truediff);
      LcsOverTruediff.push_back(LcsSize / Truediff);
    }
  }

  printHeader("patch sizes (absolute)");
  printRow("truediff", TrueDiffSizes);
  printRow("gumtree", GumtreeSizes);
  printRow("hdiff", HdiffSizes);
  printRow("lcsdiff (all ops)", LcsSizes);
  printRow("lcsdiff (ins+del only)", LcsChanges);

  printHeader("Figure 4 left: patch size difference");
  printRow("hdiff - truediff", HdiffMinusTruediff);
  printRow("gumtree - truediff", GumtreeMinusTruediff);
  printRow("lcsdiff - truediff", LcsMinusTruediff);

  printHeader("Figure 4 right: patch size ratio");
  printRow("hdiff / truediff", HdiffOverTruediff);
  printRow("gumtree / truediff", GumtreeOverTruediff);
  printRow("lcsdiff / truediff", LcsOverTruediff);

  JsonReport Report("fig4_conciseness");
  Report.meta("pairs", static_cast<double>(TrueDiffSizes.size()));
  Report.add("truediff", "edits", TrueDiffSizes);
  Report.add("gumtree", "edits", GumtreeSizes);
  Report.add("hdiff", "edits", HdiffSizes);
  Report.add("lcsdiff", "edits", LcsSizes);
  Report.add("hdiff_minus_truediff", "edits", HdiffMinusTruediff);
  Report.add("gumtree_minus_truediff", "edits", GumtreeMinusTruediff);
  Report.add("hdiff_over_truediff", "ratio", HdiffOverTruediff);
  Report.add("gumtree_over_truediff", "ratio", GumtreeOverTruediff);
  Report.write();
  return 0;
}

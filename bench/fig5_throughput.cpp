//===- bench/fig5_throughput.cpp - Reproduces paper Figure 5 ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5 of the paper: diffing throughput in nodes per millisecond for
/// hdiff, Gumtree, and truediff, as box plots over the commit corpus,
/// excluding parsing times. Per the paper's setup, every pair is diffed
/// three times and the fastest run is kept, and trees are reconstructed
/// before each truediff/hdiff invocation so the time for computing the
/// hashes is included.
///
/// truediff is measured under both digest policies: the SHA-256 default
/// and the Fast128 non-cryptographic policy. The two must produce
/// byte-identical edit scripts (same URIs, same operation order) — this
/// bench diffs every pair under both policies and exits non-zero if any
/// script or touched-URI set diverges, or if the fast policy's median
/// throughput is below 2x the SHA-256 policy. CI runs this as a perf
/// smoke gate.
///
/// Also prints truediff's absolute per-file running times (the paper
/// reports median 6.4 ms, mean 12.7 ms on its corpus).
///
/// Expected shape: truediff fastest; Gumtree pays for quadratic matching;
/// the hdiff column reflects *our C++* hdiff, not the paper's Haskell
/// implementation (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "python/Python.h"
#include "support/WorkerPool.h"
#include "truechange/Serialize.h"
#include "truediff/TrueDiff.h"

#include <thread>

using namespace truediff;
using namespace truediff::bench;

namespace {

/// One copy+diff in \p Ctx; returns the serialized script and touched URIs.
/// Callers compare the result across per-policy contexts that performed an
/// identical allocation sequence, so the URI streams line up byte for byte.
std::pair<std::string, std::vector<URI>>
diffOnce(TreeContext &Ctx, const SignatureTable &Sig, Tree *Before,
         Tree *After) {
  Tree *Src = Ctx.deepCopy(Before);
  Tree *Dst = Ctx.deepCopy(After);
  TrueDiff Differ(Ctx);
  DiffResult R = Differ.compareTo(Src, Dst);
  return {serializeEditScript(Sig, R.Script), R.Script.touchedUris()};
}

} // namespace

int main(int Argc, char **Argv) {
  std::printf("fig5_throughput: diffing throughput in nodes/ms "
              "(paper Figure 5)\n");
  SignatureTable Sig = python::makePythonSignature();
  std::vector<corpus::CommitPair> Pairs = defaultCorpus(Argc, Argv, 200);

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  if (Hw == 1)
    std::printf("# WARNING: hardware_concurrency == 1; Step-1 parallel "
                "speedup will be recorded as skipped\n");

  std::vector<double> TruediffThroughput, FastThroughput, GumtreeThroughput,
      HdiffThroughput, TruediffMs, FastMs, GumtreeMs, HdiffMs;
  size_t ScriptMismatches = 0, UriMismatches = 0;
  const corpus::CommitPair *LargestPair = nullptr;
  uint64_t LargestNodes = 0;

  for (const corpus::CommitPair &Pair : Pairs) {
    // Per-policy contexts. Both see the identical operation sequence
    // (parse Before, parse After, copy+diff, timing loops), so URIs —
    // and therefore serialized scripts — are comparable across them.
    TreeContext Ctx(Sig, DigestPolicy::Sha256);
    TreeContext CtxFast(Sig, DigestPolicy::Fast128);
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    auto BeforeF = python::parsePython(CtxFast, Pair.Before);
    auto AfterF = python::parsePython(CtxFast, Pair.After);
    if (!Before.ok() || !After.ok() || !BeforeF.ok() || !AfterF.ok())
      continue;
    double Nodes =
        static_cast<double>(Before.Module->size() + After.Module->size());
    if (Before.Module->size() > LargestNodes) {
      LargestNodes = Before.Module->size();
      LargestPair = &Pair;
    }

    // Cross-policy correctness: the edit script must not depend on the
    // digest policy. One copy+diff per context, byte-compared.
    auto ShaOut = diffOnce(Ctx, Sig, Before.Module, After.Module);
    auto FastOut = diffOnce(CtxFast, Sig, BeforeF.Module, AfterF.Module);
    if (ShaOut.first != FastOut.first)
      ++ScriptMismatches;
    if (ShaOut.second != FastOut.second)
      ++UriMismatches;

    // truediff (SHA-256): rebuild both trees per run (hash computation
    // included); compareTo consumes the source copy.
    double TD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Before.Module);
      Tree *Dst = Ctx.deepCopy(After.Module);
      TrueDiff Differ(Ctx);
      DiffResult R = Differ.compareTo(Src, Dst);
      (void)R;
    });

    // truediff (Fast128): same protocol under the fast digest policy.
    double TF = fastestMs(3, [&] {
      Tree *Src = CtxFast.deepCopy(BeforeF.Module);
      Tree *Dst = CtxFast.deepCopy(AfterF.Module);
      TrueDiff Differ(CtxFast);
      DiffResult R = Differ.compareTo(Src, Dst);
      (void)R;
    });

    // Gumtree: rebuild the rose trees per run (hashing included).
    double GT = fastestMs(3, [&] {
      gumtree::RoseForest Forest;
      gumtree::RNode *Src = Forest.fromTree(Sig, Before.Module);
      gumtree::RNode *Dst = Forest.fromTree(Sig, After.Module);
      gumtree::GumTreeResult R = gumtree::gumtreeDiff(Forest, Src, Dst);
      (void)R;
    });

    // hdiff: rebuild both trees per run.
    double HD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Before.Module);
      Tree *Dst = Ctx.deepCopy(After.Module);
      hdiff::HDiff Differ(Ctx);
      hdiff::HDiffPatch P = Differ.diff(Src, Dst);
      (void)P;
    });

    TruediffMs.push_back(TD);
    FastMs.push_back(TF);
    GumtreeMs.push_back(GT);
    HdiffMs.push_back(HD);
    TruediffThroughput.push_back(Nodes / TD);
    FastThroughput.push_back(Nodes / TF);
    GumtreeThroughput.push_back(Nodes / GT);
    HdiffThroughput.push_back(Nodes / HD);
  }

  printHeader("Figure 5: throughput (nodes/ms), fastest of 3");
  printRow("hdiff (C++ reimpl.)", HdiffThroughput);
  printRow("gumtree", GumtreeThroughput);
  printRow("truediff (sha256)", TruediffThroughput);
  printRow("truediff (fast128)", FastThroughput);

  printHeader("running time per file (ms)");
  printRow("hdiff (C++ reimpl.)", HdiffMs);
  printRow("gumtree", GumtreeMs);
  printRow("truediff (sha256)", TruediffMs);
  printRow("truediff (fast128)", FastMs);
  std::printf("\n# paper reference for truediff: median 6.4 ms, mean 12.7 "
              "ms per file (JVM, keras corpus)\n");

  // Step-1 parallel speedup: serial vs pooled subtree rehash of the
  // largest module in the corpus. Meaningless on a single hardware
  // thread, so record it as skipped there (the ISSUE acceptance
  // criterion requires measurement on >= 2 cores or an explicit skip).
  JsonReport Report("fig5_throughput");
  Report.meta("pairs", static_cast<double>(TruediffMs.size()));
  Report.meta("hardware_concurrency", static_cast<double>(Hw));
  if (Hw >= 2 && LargestPair != nullptr) {
    TreeContext ParCtx(Sig, DigestPolicy::Fast128);
    auto Mod = python::parsePython(ParCtx, LargestPair->Before);
    if (Mod.ok()) {
      WorkerPool Pool(Hw);
      double Serial =
          fastestMs(5, [&] { Mod.Module->refreshDerived(Sig, ParCtx.digestPolicy()); });
      double Parallel = fastestMs(5, [&] {
        Mod.Module->refreshDerivedParallel(Sig, ParCtx.digestPolicy(), Pool);
      });
      double Speedup = Serial / Parallel;
      std::printf("# step-1 parallel rehash on %llu-node module: serial "
                  "%.3f ms, %u-thread %.3f ms (%.2fx)\n",
                  static_cast<unsigned long long>(LargestNodes), Serial, Hw,
                  Parallel, Speedup);
      Report.meta("step1_parallel", "measured");
      Report.scalar("step1_serial", "ms", Serial);
      Report.scalar("step1_parallel", "ms", Parallel);
      Report.scalar("step1_speedup", "x", Speedup);
    }
  } else {
    std::printf("# step-1 parallel speedup: skipped "
                "(hardware_concurrency == %u)\n", Hw);
    Report.meta("step1_parallel", "skipped: hardware_concurrency == 1");
  }

  bool Identical = ScriptMismatches == 0 && UriMismatches == 0;
  double ShaMedian = BoxStats::of(TruediffThroughput).Median;
  double FastMedian = BoxStats::of(FastThroughput).Median;
  double Ratio = ShaMedian > 0 ? FastMedian / ShaMedian : 0;
  bool FastEnough = Ratio >= 2.0;
  std::printf("# cross-policy scripts identical: %s (%zu script, %zu "
              "touched-uri mismatches)\n",
              Identical ? "yes" : "NO", ScriptMismatches, UriMismatches);
  std::printf("# fast128/sha256 median throughput ratio: %.2fx (gate: "
              ">= 2.0) %s\n", Ratio, FastEnough ? "ok" : "FAIL");

  Report.meta("scripts_identical", Identical ? "yes" : "no");
  Report.meta("fast_over_sha_ratio", Ratio);
  Report.add("truediff", "nodes_per_ms", TruediffThroughput);
  Report.add("truediff_fast", "nodes_per_ms", FastThroughput);
  Report.add("gumtree", "nodes_per_ms", GumtreeThroughput);
  Report.add("hdiff", "nodes_per_ms", HdiffThroughput);
  Report.add("truediff_time", "ms", TruediffMs);
  Report.add("truediff_fast_time", "ms", FastMs);
  Report.add("gumtree_time", "ms", GumtreeMs);
  Report.add("hdiff_time", "ms", HdiffMs);
  Report.write();
  return Identical && FastEnough ? 0 : 1;
}

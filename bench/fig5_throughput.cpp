//===- bench/fig5_throughput.cpp - Reproduces paper Figure 5 ---------------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5 of the paper: diffing throughput in nodes per millisecond for
/// hdiff, Gumtree, and truediff, as box plots over the commit corpus,
/// excluding parsing times. Per the paper's setup, every pair is diffed
/// three times and the fastest run is kept, and trees are reconstructed
/// before each truediff/hdiff invocation so the time for computing the
/// cryptographic hashes is included.
///
/// Also prints truediff's absolute per-file running times (the paper
/// reports median 6.4 ms, mean 12.7 ms on its corpus).
///
/// Expected shape: truediff fastest; Gumtree pays for quadratic matching;
/// the hdiff column reflects *our C++* hdiff, not the paper's Haskell
/// implementation (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "python/Python.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::bench;

int main(int Argc, char **Argv) {
  std::printf("fig5_throughput: diffing throughput in nodes/ms "
              "(paper Figure 5)\n");
  SignatureTable Sig = python::makePythonSignature();
  std::vector<corpus::CommitPair> Pairs = defaultCorpus(Argc, Argv, 200);

  std::vector<double> TruediffThroughput, GumtreeThroughput,
      HdiffThroughput, TruediffMs, GumtreeMs, HdiffMs;

  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    if (!Before.ok() || !After.ok())
      continue;
    double Nodes =
        static_cast<double>(Before.Module->size() + After.Module->size());

    // truediff: rebuild both trees per run (hash computation included);
    // compareTo consumes the source copy.
    double TD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Before.Module);
      Tree *Dst = Ctx.deepCopy(After.Module);
      TrueDiff Differ(Ctx);
      DiffResult R = Differ.compareTo(Src, Dst);
      (void)R;
    });

    // Gumtree: rebuild the rose trees per run (hashing included).
    double GT = fastestMs(3, [&] {
      gumtree::RoseForest Forest;
      gumtree::RNode *Src = Forest.fromTree(Sig, Before.Module);
      gumtree::RNode *Dst = Forest.fromTree(Sig, After.Module);
      gumtree::GumTreeResult R = gumtree::gumtreeDiff(Forest, Src, Dst);
      (void)R;
    });

    // hdiff: rebuild both trees per run.
    double HD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Before.Module);
      Tree *Dst = Ctx.deepCopy(After.Module);
      hdiff::HDiff Differ(Ctx);
      hdiff::HDiffPatch P = Differ.diff(Src, Dst);
      (void)P;
    });

    TruediffMs.push_back(TD);
    GumtreeMs.push_back(GT);
    HdiffMs.push_back(HD);
    TruediffThroughput.push_back(Nodes / TD);
    GumtreeThroughput.push_back(Nodes / GT);
    HdiffThroughput.push_back(Nodes / HD);
  }

  printHeader("Figure 5: throughput (nodes/ms), fastest of 3");
  printRow("hdiff (C++ reimpl.)", HdiffThroughput);
  printRow("gumtree", GumtreeThroughput);
  printRow("truediff", TruediffThroughput);

  printHeader("running time per file (ms)");
  printRow("hdiff (C++ reimpl.)", HdiffMs);
  printRow("gumtree", GumtreeMs);
  printRow("truediff", TruediffMs);
  std::printf("\n# paper reference for truediff: median 6.4 ms, mean 12.7 "
              "ms per file (JVM, keras corpus)\n");

  JsonReport Report("fig5_throughput");
  Report.meta("pairs", static_cast<double>(TruediffMs.size()));
  Report.add("truediff", "nodes_per_ms", TruediffThroughput);
  Report.add("gumtree", "nodes_per_ms", GumtreeThroughput);
  Report.add("hdiff", "nodes_per_ms", HdiffThroughput);
  Report.add("truediff_time", "ms", TruediffMs);
  Report.add("gumtree_time", "ms", GumtreeMs);
  Report.add("hdiff_time", "ms", HdiffMs);
  Report.write();
  return 0;
}

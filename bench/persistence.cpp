//===- bench/persistence.cpp - WAL append and recovery throughput ----------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the durability subsystem on its two hot paths and writes
/// BENCH_persistence.json:
///
///   1. WAL append throughput (scripts/s and MB/s) as the group-commit
///      batch (Config::FsyncEvery) grows from 1 (every record fsynced
///      before its commit is acknowledged) to 32. Records are real edit
///      scripts from mutated Python modules, binary-encoded once up
///      front, so the phase times framing + write + fsync policy and
///      nothing else. Group commit is the point of the design: the
///      bench FAILS (exit 1) unless batch >= 8 reaches at least 2x the
///      fsync-per-record throughput.
///
///   2. Recovery replay speed (restored tree nodes/ms): a data
///      directory is populated by live traffic (open + mutation chains
///      across many documents), then recovered into a fresh store with
///      every script re-validated by LinearTypeChecker and re-applied
///      by MTree::patchChecked. The bench FAILS if the recovered state
///      diverges from the state the live store held at shutdown
///      (version or URI-annotated tree of any document) or any
///      document's digests come back stale.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "corpus/Mutator.h"
#include "corpus/PyGen.h"
#include "persist/BinaryCodec.h"
#include "persist/Persistence.h"
#include "persist/Snapshot.h"
#include "persist/Wal.h"
#include "python/Python.h"
#include "service/DocumentStore.h"
#include "service/Wire.h"
#include "support/Rng.h"
#include "tree/SExpr.h"
#include "truediff/TrueDiff.h"

#include <map>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

using namespace truediff;
using namespace truediff::bench;
using namespace truediff::persist;
using namespace truediff::service;

namespace {

/// A scratch data directory under the working directory (same
/// filesystem as the build tree, so fsync cost is the real disk's, not
/// tmpfs's). Removed with its wal/snap contents on destruction.
class BenchDir {
public:
  BenchDir() {
    char Tmpl[] = "./persist-bench-XXXXXX";
    const char *P = ::mkdtemp(Tmpl);
    Dir = P ? P : "";
  }
  ~BenchDir() {
    if (Dir.empty())
      return;
    for (const auto &[Index, Path] : listWalSegments(Dir))
      ::unlink(Path.c_str());
    for (const SnapshotFileName &F : listSnapshotFiles(Dir))
      ::unlink(F.Path.c_str());
    ::rmdir(Dir.c_str());
  }
  bool ok() const { return !Dir.empty(); }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

/// Pre-encodes \p Count WAL records holding real mutation scripts.
std::vector<WalRecord> buildRecordCorpus(const SignatureTable &Sig,
                                         size_t Count) {
  std::vector<WalRecord> Records;
  Records.reserve(Count);
  Rng R(4242);
  TreeContext Ctx(Sig);
  Tree *Current = corpus::generateModule(Ctx, R);
  uint64_t Seq = 0;
  while (Records.size() < Count) {
    Tree *Next = corpus::mutateModule(Ctx, R, Current);
    TrueDiff Differ(Ctx);
    EditScript Script = Differ.compareTo(Current, Next).Script;
    Current = Next;
    if (Script.empty())
      continue;
    WalRecord Rec;
    Rec.Kind = WalKind::Submit;
    Rec.Doc = Records.size() % 16;
    Rec.Seq = ++Seq;
    Rec.Version = Seq;
    Rec.Script = encodeEditScript(Sig, Script);
    Records.push_back(std::move(Rec));
  }
  return Records;
}

struct AppendMeasurement {
  double ScriptsPerSec = 0;
  double MbPerSec = 0;
};

/// Appends the whole corpus to a fresh WAL with the given batch size;
/// fastest of \p Runs.
AppendMeasurement measureAppend(const std::vector<WalRecord> &Records,
                                size_t FsyncEvery, unsigned Runs,
                                double PayloadBytes) {
  double BestMs = 1e300;
  for (unsigned Run = 0; Run != Runs; ++Run) {
    BenchDir Dir;
    if (!Dir.ok())
      return {};
    WalWriter W(Dir.path(), {FsyncEvery, 64u << 20});
    auto Start = Clock::now();
    for (const WalRecord &Rec : Records)
      W.append(Rec);
    W.flush(); // count the tail sync against every policy equally
    BestMs = std::min(BestMs, msSince(Start));
  }
  AppendMeasurement M;
  M.ScriptsPerSec = static_cast<double>(Records.size()) / (BestMs / 1000.0);
  M.MbPerSec = PayloadBytes / (1024.0 * 1024.0) / (BestMs / 1000.0);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  std::printf("persistence: WAL group-commit append throughput + recovery "
              "replay speed\n");
  SignatureTable Sig = python::makePythonSignature();

  size_t NumRecords = 400;
  if (Argc > 1)
    NumRecords = parseCountArg(Argv[1], "record count");

  JsonReport Report("persistence");

  // Phase 1: append throughput vs group-commit batch size.
  std::vector<WalRecord> Records = buildRecordCorpus(Sig, NumRecords);
  double PayloadBytes = 0;
  for (const WalRecord &Rec : Records)
    PayloadBytes += static_cast<double>(Rec.Script.size());
  std::printf("# %zu records, %.1f KiB of encoded scripts (mean %.0f B)\n",
              Records.size(), PayloadBytes / 1024.0,
              PayloadBytes / static_cast<double>(Records.size()));
  Report.meta("records", static_cast<double>(Records.size()));
  Report.meta("payload_bytes", PayloadBytes);

  std::printf("%-14s %14s %12s %10s\n", "fsync_every", "scripts/s", "MB/s",
              "speedup");
  double Base = 0, BatchedBest = 0;
  for (size_t FsyncEvery : {size_t(1), size_t(2), size_t(4), size_t(8),
                            size_t(16), size_t(32)}) {
    AppendMeasurement M = measureAppend(Records, FsyncEvery, 3, PayloadBytes);
    if (FsyncEvery == 1)
      Base = M.ScriptsPerSec;
    if (FsyncEvery >= 8)
      BatchedBest = std::max(BatchedBest, M.ScriptsPerSec);
    std::printf("%-14zu %14.0f %12.2f %9.2fx\n", FsyncEvery, M.ScriptsPerSec,
                M.MbPerSec, M.ScriptsPerSec / Base);
    std::string Name = "wal_append_fsync_" + std::to_string(FsyncEvery);
    Report.scalar(Name, "scripts_per_s", M.ScriptsPerSec);
    Report.scalar(Name + "_mb", "mb_per_s", M.MbPerSec);
  }
  double GroupCommitSpeedup = BatchedBest / Base;
  Report.scalar("group_commit_speedup", "ratio", GroupCommitSpeedup);
  std::printf("# group commit (batch >= 8) over fsync-per-record: %.2fx\n",
              GroupCommitSpeedup);

  // Phase 2: recovery replay speed. Populate a data directory with live
  // traffic, remember the shutdown state, recover into fresh stores.
  BenchDir DataDir;
  if (!DataDir.ok()) {
    std::printf("# FAIL: cannot create scratch directory\n");
    return 1;
  }
  size_t NumDocs = 24, CommitsPerDoc = 12;
  std::map<DocId, std::pair<uint64_t, std::string>> Expected;
  {
    DocumentStore Store(Sig);
    Persistence::Config PC;
    PC.Dir = DataDir.path();
    PC.FsyncEvery = 8;
    PC.SnapshotEvery = 0; // pure WAL replay: the worst-case recovery
    PC.BackgroundIntervalMs = 0;
    Persistence P(Sig, PC);
    P.attach(Store);
    Rng R(777);
    for (DocId Doc = 1; Doc <= NumDocs; ++Doc) {
      Rng DocRng(R.next());
      corpus::PyGenOptions GenOpts;
      GenOpts.NumFunctions = 3;
      GenOpts.NumClasses = 1;
      // The mutation chain lives in a scratch context; each version
      // travels into the store as text, like wire traffic would.
      TreeContext Scratch(Sig);
      Tree *Cur = corpus::generateModule(Scratch, DocRng, GenOpts);
      Store.open(Doc, makeSExprBuilder(printSExpr(Sig, Cur)));
      for (size_t I = 0; I != CommitsPerDoc; ++I) {
        Cur = corpus::mutateModule(Scratch, DocRng, Cur);
        Store.submit(Doc, makeSExprBuilder(printSExpr(Sig, Cur)));
      }
      DocumentSnapshot S = Store.snapshot(Doc);
      Expected[Doc] = {S.Version, S.UriText};
    }
    P.flush();
  }

  RecoveryResult RR;
  bool Diverged = false;
  double BestMs = 1e300;
  for (unsigned Run = 0; Run != 3; ++Run) {
    DocumentStore Fresh(Sig);
    auto Start = Clock::now();
    RR = Persistence::recover(Sig, DataDir.path(), Fresh);
    BestMs = std::min(BestMs, msSince(Start));
    for (const auto &[Doc, VersionAndText] : Expected) {
      DocumentSnapshot S = Fresh.snapshot(Doc);
      if (!S.Ok || S.Version != VersionAndText.first ||
          S.UriText != VersionAndText.second ||
          Fresh.checkDigests(Doc).has_value()) {
        Diverged = true;
        std::printf("# FAIL: doc %llu diverged after recovery\n",
                    static_cast<unsigned long long>(Doc));
      }
    }
  }
  double NodesPerMs = static_cast<double>(RR.NodesRestored) / BestMs;
  std::printf("\n# recovery: %llu docs, %llu records (%llu edits), %llu "
              "nodes restored in %.1f ms -> %.0f nodes/ms, state %s\n",
              static_cast<unsigned long long>(RR.DocsRecovered),
              static_cast<unsigned long long>(RR.RecordsReplayed),
              static_cast<unsigned long long>(RR.EditsReplayed),
              static_cast<unsigned long long>(RR.NodesRestored), BestMs,
              NodesPerMs, Diverged ? "DIVERGED" : "exact");
  Report.scalar("recovery_replay", "nodes_per_ms", NodesPerMs);
  Report.scalar("recovery_edits", "edits", static_cast<double>(RR.EditsReplayed));
  Report.meta("recovery_docs", static_cast<double>(RR.DocsRecovered));
  Report.meta("recovery_records", static_cast<double>(RR.RecordsReplayed));
  Report.meta("recovery_exact", Diverged ? "no" : "yes");
  Report.write();

  bool SpeedupOk = GroupCommitSpeedup >= 2.0;
  if (!SpeedupOk)
    std::printf("# FAIL: group commit (batch >= 8) must reach 2x "
                "fsync-per-record append throughput, got %.2fx\n",
                GroupCommitSpeedup);
  if (Diverged)
    std::printf("# FAIL: recovered state must equal the shutdown state\n");
  return SpeedupOk && !Diverged ? 0 : 1;
}

//===- bench/ablation_selection.cpp - Ablations of truediff's Step 3 -------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study of the two candidate-selection ingredients the paper
/// motivates in Sections 4.1 and 4.3 (DESIGN.md E9/E10):
///
///  - preferring literally equivalent (exact-copy) candidates before any
///    structurally equivalent one;
///  - traversing target subtrees highest-first (vs plain FIFO/BFS),
///    which avoids subtree fragmentation.
///
/// Reports patch sizes and diff times per configuration over the corpus.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "python/Python.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::bench;

int main(int Argc, char **Argv) {
  std::printf("ablation_selection: truediff candidate-selection ablations "
              "(DESIGN.md E9/E10)\n");
  SignatureTable Sig = python::makePythonSignature();
  std::vector<corpus::CommitPair> Pairs = defaultCorpus(Argc, Argv, 200);

  struct Config {
    const char *Name;
    TrueDiffOptions Opts;
  };
  Config Configs[3];
  Configs[0].Name = "full (paper)";
  Configs[1].Name = "no literal preference";
  Configs[1].Opts.PreferLiteralMatches = false;
  Configs[2].Name = "FIFO instead of height";
  Configs[2].Opts.HeightPriority = false;

  std::vector<double> Sizes[3], Times[3], Updates[3];

  for (const corpus::CommitPair &Pair : Pairs) {
    TreeContext Ctx(Sig);
    auto Before = python::parsePython(Ctx, Pair.Before);
    auto After = python::parsePython(Ctx, Pair.After);
    if (!Before.ok() || !After.ok())
      continue;

    for (int C = 0; C != 3; ++C) {
      size_t Size = 0, NumUpdates = 0;
      double Ms = fastestMs(3, [&] {
        Tree *Src = Ctx.deepCopy(Before.Module);
        Tree *Dst = Ctx.deepCopy(After.Module);
        TrueDiff Differ(Ctx, Configs[C].Opts);
        DiffResult R = Differ.compareTo(Src, Dst);
        Size = R.Script.coalescedSize();
        NumUpdates = 0;
        for (const Edit &E : R.Script.edits())
          NumUpdates += E.Kind == EditKind::Update;
      });
      Sizes[C].push_back(static_cast<double>(Size));
      Times[C].push_back(Ms);
      Updates[C].push_back(static_cast<double>(NumUpdates));
    }
  }

  printHeader("patch size (coalesced edits)");
  for (int C = 0; C != 3; ++C)
    printRow(Configs[C].Name, Sizes[C]);

  printHeader("update edits per patch (exact copies avoid updates)");
  for (int C = 0; C != 3; ++C)
    printRow(Configs[C].Name, Updates[C]);

  printHeader("diff time (ms, fastest of 3)");
  for (int C = 0; C != 3; ++C)
    printRow(Configs[C].Name, Times[C]);

  JsonReport Report("ablation_selection");
  Report.meta("pairs", static_cast<double>(Sizes[0].size()));
  const char *Keys[3] = {"full", "no_literal_preference", "fifo"};
  for (int C = 0; C != 3; ++C) {
    Report.add(std::string(Keys[C]) + "_size", "edits", Sizes[C]);
    Report.add(std::string(Keys[C]) + "_updates", "edits", Updates[C]);
    Report.add(std::string(Keys[C]) + "_time", "ms", Times[C]);
  }
  Report.write();
  return 0;
}

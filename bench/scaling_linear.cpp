//===- bench/scaling_linear.cpp - Validates Theorem 4.1 (linear time) ------===//
//
// Part of truediff-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 4.1 claims truediff runs in O(m + n). This bench diffs
/// generated modules of growing size against lightly mutated versions and
/// prints time per node; a flat final column confirms linearity. Gumtree
/// is measured on the smaller sizes for contrast (its matching is
/// superlinear), as is hdiff.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gumtree/GumTree.h"
#include "hdiff/HDiff.h"
#include "python/Python.h"
#include "truediff/TrueDiff.h"

using namespace truediff;
using namespace truediff::bench;

int main(int Argc, char **Argv) {
  std::printf("scaling_linear: truediff run time vs tree size "
              "(Theorem 4.1)\n\n");
  SignatureTable Sig = python::makePythonSignature();

  uint64_t MaxSize = 300000;
  if (Argc > 1)
    MaxSize = parseCountArg(Argv[1], "max tree size");

  std::printf("%10s %14s %14s %14s %16s\n", "nodes", "truediff(ms)",
              "us/node", "gumtree(ms)", "hdiff(ms)");

  JsonReport Report("scaling_linear");
  Report.meta("max_size", static_cast<double>(MaxSize));
  std::vector<double> UsPerNode;

  for (uint64_t Size = 1000; Size <= MaxSize; Size *= 3) {
    TreeContext Ctx(Sig);
    Rng R(Size);
    Tree *Base = corpus::generateModuleOfSize(Ctx, R, Size);
    corpus::MutatorOptions Mut;
    Mut.MinOps = 4;
    Mut.MaxOps = 4;
    Tree *Target = corpus::mutateModule(Ctx, R, Base, Mut);
    double Nodes = static_cast<double>(Base->size() + Target->size());

    double TD = fastestMs(3, [&] {
      Tree *Src = Ctx.deepCopy(Base);
      Tree *Dst = Ctx.deepCopy(Target);
      TrueDiff Differ(Ctx);
      (void)Differ.compareTo(Src, Dst);
    });

    // Baselines only at moderate sizes; they dominate the bench time
    // beyond that.
    double GT = -1, HD = -1;
    if (Base->size() <= 30000) {
      GT = fastestMs(2, [&] {
        gumtree::RoseForest Forest;
        (void)gumtree::gumtreeDiff(Forest, Forest.fromTree(Sig, Base),
                                   Forest.fromTree(Sig, Target));
      });
      HD = fastestMs(2, [&] {
        Tree *Src = Ctx.deepCopy(Base);
        Tree *Dst = Ctx.deepCopy(Target);
        hdiff::HDiff Differ(Ctx);
        (void)Differ.diff(Src, Dst);
      });
    }

    std::printf("%10llu %14.2f %14.4f %14.2f %16.2f\n",
                static_cast<unsigned long long>(Base->size()), TD,
                TD * 1000.0 / Nodes, GT, HD);

    std::string SizeLabel = "nodes_" + std::to_string(Base->size());
    Report.scalar(SizeLabel + "_truediff", "ms", TD);
    Report.scalar(SizeLabel + "_us_per_node", "us", TD * 1000.0 / Nodes);
    UsPerNode.push_back(TD * 1000.0 / Nodes);
  }
  std::printf("\n# a flat us/node column indicates linear run time "
              "(Theorem 4.1)\n");
  Report.add("us_per_node", "us", UsPerNode);
  Report.write();
  return 0;
}
